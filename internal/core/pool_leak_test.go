//go:build pooldebug

package core

import (
	"errors"
	"strings"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/moa"
)

// The pooldebug leak tests snapshot the live-borrow counters around every
// retrieval entry point — success and injected-failure paths alike — and
// require the delta be zero: no pooled Scores map, ranking slice or row
// scratch may outlive the call that borrowed it. They complement the
// static poolcheck analyzer: poolcheck proves the release calls exist on
// every path, these tests prove the calls actually run.

type poolCounters struct{ scores, ranked, rows int }

func snapshotPools() poolCounters {
	return poolCounters{scores: ir.LiveScores(), ranked: LiveRanked(), rows: moa.LiveRows()}
}

func assertNoLeak(t *testing.T, label string, before poolCounters) {
	t.Helper()
	after := snapshotPools()
	if after != before {
		t.Errorf("%s leaked pooled scratch: scores %+d, ranked %+d, rows %+d",
			label, after.scores-before.scores, after.ranked-before.ranked, after.rows-before.rows)
	}
}

// leakStub builds a small indexed store with the deterministic stub
// pipeline (see refresh_test.go).
func leakStub(t *testing.T) *Mirror {
	t.Helper()
	urls, anns := refreshCorpus(24, 11)
	return oneShotStub(t, urls, anns)
}

// TestQueryPathsDoNotLeak drives every single-store retrieval surface,
// ranked cut and full ranking both, and requires the borrow counters to
// return to their baseline.
func TestQueryPathsDoNotLeak(t *testing.T) {
	m := leakStub(t)
	for _, k := range []int{5, 0} {
		before := snapshotPools()
		if _, err := m.QueryAnnotations("harbor gull", k); err != nil {
			t.Fatal(err)
		}
		assertNoLeak(t, "QueryAnnotations", before)

		before = snapshotPools()
		clusters := m.ExpandQuery("harbor gull", 5)
		if len(clusters) > 0 {
			if _, err := m.QueryContent(clusters, k); err != nil {
				t.Fatal(err)
			}
		}
		assertNoLeak(t, "QueryContent", before)

		before = snapshotPools()
		if _, err := m.QueryDualCoding("harbor gull", k); err != nil {
			t.Fatal(err)
		}
		assertNoLeak(t, "QueryDualCoding", before)
	}

	// WeightedContentScores transfers ownership to the caller: the borrow
	// is live until the caller releases it.
	clusters := m.ExpandQuery("harbor tide", 5)
	if len(clusters) > 0 {
		ws := make([]float64, len(clusters))
		for i := range ws {
			ws[i] = 1
		}
		before := snapshotPools()
		scores, err := m.WeightedContentScores(clusters, ws)
		if err != nil {
			t.Fatal(err)
		}
		if got := ir.LiveScores() - before.scores; got != 1 {
			t.Errorf("WeightedContentScores should hand the caller one live borrow, got %+d", got)
		}
		ir.ReleaseScores(scores)
		assertNoLeak(t, "WeightedContentScores+release", before)
	}
}

// TestSessionRunDoesNotLeak covers the feedback loop: Run on a fresh
// session, then again after a feedback round reweights the content query.
func TestSessionRunDoesNotLeak(t *testing.T) {
	m := leakStub(t)
	sess, err := m.NewSession("harbor gull")
	if err != nil {
		t.Fatal(err)
	}
	// Force a non-empty content query even if the stub thesaurus
	// associates nothing, so Run exercises the WeightedContentScores arm.
	sess.weights["c000"] = 1

	before := snapshotPools()
	hits, err := sess.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, "Session.Run", before)

	if len(hits) > 0 {
		if err := sess.Feedback([]bat.OID{hits[0].OID}, nil); err != nil {
			t.Fatal(err)
		}
		before = snapshotPools()
		if _, err := sess.Run(8); err != nil {
			t.Fatal(err)
		}
		assertNoLeak(t, "Session.Run after feedback", before)
	}
}

var errInjected = errors.New("injected failure")

// failingWCSHost is a session host whose WeightedContentScores always
// fails — the exact error path that leaked the text-evidence map before
// this change.
type failingWCSHost struct{ *Mirror }

func (f *failingWCSHost) WeightedContentScores([]string, []float64) (ir.Scores, error) {
	return nil, errInjected
}

// TestSessionRunErrorPathDoesNotLeak pins the first pre-PR bug: when
// WeightedContentScores fails mid-Run, the already-borrowed text score
// map must still be released.
func TestSessionRunErrorPathDoesNotLeak(t *testing.T) {
	m := leakStub(t)
	sess, err := newSession(&failingWCSHost{m}, "harbor gull")
	if err != nil {
		t.Fatal(err)
	}
	sess.weights["c000"] = 1 // guarantee the failing arm runs

	before := snapshotPools()
	if _, err := sess.Run(8); !errors.Is(err, errInjected) {
		t.Fatalf("Run error = %v, want injected failure", err)
	}
	assertNoLeak(t, "Session.Run error path", before)
}

// failingContentSite is a dual-coding site whose content query always
// fails — the second pre-PR leak: queryDualCoding dropped the text map
// on that return.
type failingContentSite struct{ hits []Hit }

func (f failingContentSite) urlOf(bat.OID) string { return "" }
func (f failingContentSite) QueryAnnotations(string, int) ([]Hit, error) {
	return f.hits, nil
}
func (f failingContentSite) QueryContent([]string, int) ([]Hit, error) {
	return nil, errInjected
}
func (f failingContentSite) ExpandQuery(string, int) []string { return []string{"c000"} }

func TestDualCodingErrorPathDoesNotLeak(t *testing.T) {
	site := failingContentSite{hits: []Hit{{OID: 1, Score: 0.5}, {OID: 2, Score: 0.25}}}
	before := snapshotPools()
	if _, err := queryDualCoding(site, "harbor gull", 5); !errors.Is(err, errInjected) {
		t.Fatalf("queryDualCoding error = %v, want injected failure", err)
	}
	assertNoLeak(t, "queryDualCoding error path", before)
}

// TestShardedQueryPathsDoNotLeak repeats the coverage over the
// scatter-gather engine for N ∈ {1, 2, 8} shards, including the fan-out
// WeightedContentScores merge and the sharded session.
func TestShardedQueryPathsDoNotLeak(t *testing.T) {
	urls, anns := refreshCorpus(24, 11)
	for _, shards := range []int{1, 2, 8} {
		e, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := range urls {
			if err := e.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
			t.Fatal(err)
		}

		before := snapshotPools()
		if _, err := e.QueryAnnotations("harbor gull", 5); err != nil {
			t.Fatal(err)
		}
		if _, err := e.QueryDualCoding("harbor gull", 5); err != nil {
			t.Fatal(err)
		}
		assertNoLeak(t, "sharded queries", before)

		clusters := e.ExpandQuery("harbor tide", 5)
		if len(clusters) > 0 {
			ws := make([]float64, len(clusters))
			for i := range ws {
				ws[i] = 1
			}
			before = snapshotPools()
			scores, err := e.WeightedContentScores(clusters, ws)
			if err != nil {
				t.Fatal(err)
			}
			ir.ReleaseScores(scores)
			assertNoLeak(t, "sharded WeightedContentScores+release", before)
		}

		sess, err := e.NewSession("harbor gull")
		if err != nil {
			t.Fatal(err)
		}
		sess.weights["c000"] = 1
		before = snapshotPools()
		if _, err := sess.Run(8); err != nil {
			t.Fatal(err)
		}
		assertNoLeak(t, "sharded Session.Run", before)
	}
}

// TestCachedPathDoesNotBorrow: a cache hit serves the stored hits without
// touching any pool.
func TestCachedPathDoesNotBorrow(t *testing.T) {
	m := leakStub(t)
	m.SetResultCache(1 << 20)
	if _, err := m.QueryDualCoding("harbor gull", 5); err != nil {
		t.Fatal(err) // cold: populates the cache
	}
	before := snapshotPools()
	if _, err := m.QueryDualCoding("harbor gull", 5); err != nil {
		t.Fatal(err)
	}
	assertNoLeak(t, "cached QueryDualCoding", before)
	if st := m.ResultCacheStats(); st.Hits == 0 {
		t.Fatalf("expected a cache hit, stats = %+v", st)
	}
}

func mustPanic(t *testing.T, wantSubstr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, want one containing %q", wantSubstr)
			return
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, wantSubstr) {
			t.Errorf("panic = %v, want one containing %q", r, wantSubstr)
		}
	}()
	fn()
}

// TestDoubleReleasePanics: releasing the same pooled map twice is a bug
// the debug build must catch loudly, not corrupt the pool silently.
func TestDoubleReleasePanics(t *testing.T) {
	s := ir.NewScores()
	s[1] = 0.5
	ir.ReleaseScores(s)
	mustPanic(t, "double ReleaseScores", func() { ir.ReleaseScores(s) })
}

// TestUseAfterReleasePanics: feeding a released map into a combinator is
// a use-after-free on pooled scratch; the debug build traps it at the
// operator entry point.
func TestUseAfterReleasePanics(t *testing.T) {
	s := ir.NewScores()
	s[1] = 0.5
	ir.ReleaseScores(s)
	mustPanic(t, "use of released Scores map", func() {
		_, _ = ir.CombineSum([]ir.Scores{s}, []float64{1})
	})
}
