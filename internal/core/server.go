package core

import (
	"fmt"
	"net"
	"net/rpc"
	"runtime"
	"strings"

	"mirror/internal/bat"
	"mirror/internal/dict"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// This file is the network face of the Mirror DBMS (cmd/mirrord): clients
// of Figure 1 reach the meta-data database through the same RPC transport
// the daemons use, and find it through the data dictionary.
//
// Queries execute concurrently: net/rpc dispatches every request in its own
// goroutine and the query path is read-only over immutable BATs (hash
// indexes build atomically), so independent queries genuinely overlap. The
// gate below bounds how many run at once so heavy traffic degrades to
// queueing instead of oversubscribing the cores the parallel BAT kernel is
// already using.

// Retriever is the serving surface of the Mirror DBMS: one store
// (*Mirror) or a sharded scatter-gather engine (*ShardedEngine). The RPC
// service and the shells run against it, so clients cannot tell how many
// stores answer their queries — routing is transparent.
type Retriever interface {
	AddImage(url, annotation string, img *media.Image) error
	AddRaster(url string, img *media.Image) error
	BuildContentIndex(opts IndexOptions) error
	BuildContentIndexDistributed(opts IndexOptions, dictAddr string) error
	QueryAnnotations(text string, k int) ([]Hit, error)
	QueryContent(clusterWords []string, k int) ([]Hit, error)
	QueryDualCoding(text string, k int) ([]Hit, error)
	Query(src string, queryTerms []string) (*moa.Result, error)
	QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error)
	ExpandQuery(text string, topK int) []string
	NewSession(text string) (*Session, error)
	ContentTerms(oid bat.OID) []string
	Size() int
	URLs() []string
	Indexed() bool
	Current() bool
	Refresh() (RefreshStats, error)
	Segments() []SegmentsInfo
	SchemaSource() string
	Thesaurus() *thesaurus.Thesaurus
	Persistent() bool
	Checkpoint() (storage.CheckpointStats, error)
	ClosePersistent() error
}

// Service exposes a Retriever over net/rpc under the name "Mirror".
type Service struct {
	m    Retriever
	gate chan struct{}
}

// defaultQueryGate is the default cap on concurrently executing queries.
func defaultQueryGate() int {
	n := 2 * runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	return n
}

// acquire claims a query slot; the returned func releases it.
func (s *Service) acquire() func() {
	if s.gate == nil {
		return func() {}
	}
	s.gate <- struct{}{}
	return func() { <-s.gate }
}

// WireHit mirrors Hit with wire-safe types.
type WireHit struct {
	OID   uint64
	URL   string
	Score float64
}

// TextQueryArgs asks for a ranked annotation/dual-coding query.
type TextQueryArgs struct {
	Text string
	K    int
	Dual bool // combine annotation and content evidence
}

// TextQueryReply returns the ranking.
type TextQueryReply struct{ Hits []WireHit }

// MoaQueryArgs carries a raw Moa query plus optional query-term bindings.
// K > 0 pushes a ranked top-k request into the query plan: retrievals the
// pruned operator can serve return only the k best rows (already ranked);
// other plans run exhaustively and are cut server-side.
type MoaQueryArgs struct {
	Source     string
	QueryTerms []string
	K          int
}

// MoaQueryReply returns rows rendered as strings (OID plus value), enough
// for the demo clients; richer clients use the Go API.
type MoaQueryReply struct {
	Scalar string
	OIDs   []uint64
	Values []string
}

// SchemaReply returns the DDL of the served database.
type SchemaReply struct{ Source string }

// TextQuery implements ranked retrieval over the wire.
func (s *Service) TextQuery(args TextQueryArgs, reply *TextQueryReply) error {
	defer s.acquire()()
	var hits []Hit
	var err error
	if args.Dual {
		hits, err = s.m.QueryDualCoding(args.Text, args.K)
	} else {
		hits, err = s.m.QueryAnnotations(args.Text, args.K)
	}
	if err != nil {
		return err
	}
	for _, h := range hits {
		reply.Hits = append(reply.Hits, WireHit{OID: uint64(h.OID), URL: h.URL, Score: h.Score})
	}
	return nil
}

// MoaQuery executes a raw Moa query; args.K > 0 requests a ranked top-k.
func (s *Service) MoaQuery(args MoaQueryArgs, reply *MoaQueryReply) error {
	defer s.acquire()()
	res, err := s.m.QueryTopK(args.Source, args.QueryTerms, args.K)
	if err != nil {
		return err
	}
	if res.Rows == nil {
		reply.Scalar = fmt.Sprintf("%v", res.Scalar)
		return nil
	}
	rows := res.Rows
	if args.K > 0 && !res.Ranked {
		// Exhaustive fallback: rank and cut server-side, so the wire
		// carries only the k best rows either way.
		if args.K < len(rows) {
			rows = moa.TopKRows(rows, args.K)
		} else {
			res.SortByScoreDesc()
			rows = res.Rows
		}
	}
	if args.K > 0 && len(rows) > args.K {
		rows = rows[:args.K]
	}
	for _, row := range rows {
		reply.OIDs = append(reply.OIDs, uint64(row.OID))
		reply.Values = append(reply.Values, fmt.Sprintf("%v", row.Value))
	}
	return nil
}

// Schema returns the database schema.
func (s *Service) Schema(_ dict.Empty, reply *SchemaReply) error {
	reply.Source = s.m.SchemaSource()
	return nil
}

// CheckpointReply reports what a remote-triggered checkpoint wrote.
type CheckpointReply struct {
	Written int   // BATs whose heap files were rewritten
	Skipped int   // clean BATs carried over untouched
	Bytes   int64 // heap-file bytes written
}

// Checkpoint flushes dirty BATs to the store and truncates the WAL;
// operators use it to bound recovery time without restarting. Errors on
// a server not opened with OpenPersistent.
func (s *Service) Checkpoint(_ dict.Empty, reply *CheckpointReply) error {
	st, err := s.m.Checkpoint()
	if err != nil {
		return err
	}
	reply.Written, reply.Skipped, reply.Bytes = st.Written, st.Skipped, st.Bytes
	return nil
}

// RefreshReply reports what a remote-triggered Refresh published.
type RefreshReply struct {
	NewDocs  int   // documents newly covered
	Docs     int   // documents covered after the publish
	Epoch    int64 // published epoch number
	Merges   int   // segment compactions applied
	Segments int   // max segment count after compaction
}

// Refresh incrementally indexes every document ingested since the last
// publish and swaps in a new snapshot epoch; queries are never blocked.
// mirrord drives this periodically via -refresh-every, and operators can
// force it between ticks.
func (s *Service) Refresh(_ dict.Empty, reply *RefreshReply) error {
	st, err := s.m.Refresh()
	if err != nil {
		return err
	}
	reply.NewDocs, reply.Docs, reply.Epoch = st.NewDocs, st.Docs, st.Epoch
	reply.Merges, reply.Segments = st.Merges, st.Segments
	return nil
}

// Serve runs the Mirror DBMS server on addr ("127.0.0.1:0" for ephemeral)
// and registers it with the dictionary when dictAddr is non-empty. It
// returns the bound address and a stop function.
func (m *Mirror) Serve(addr, dictAddr string) (string, func(), error) {
	return Serve(m, addr, dictAddr)
}

// Serve runs the RPC server for any Retriever — a single store or a
// sharded engine; the wire protocol is identical either way.
func Serve(r Retriever, addr, dictAddr string) (string, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("core: listen %s: %w", addr, err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Mirror", &Service{m: r, gate: make(chan struct{}, defaultQueryGate())}); err != nil {
		l.Close()
		return "", nil, err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	if dictAddr != "" {
		dc, err := dict.Dial(dictAddr)
		if err != nil {
			l.Close()
			return "", nil, err
		}
		defer dc.Close()
		if err := dc.Register(dict.DaemonInfo{
			Name: "mirror-dbms", Kind: "dbms", Addr: l.Addr().String(),
		}); err != nil {
			l.Close()
			return "", nil, err
		}
		if err := dc.SetSchema(r.SchemaSource()); err != nil {
			l.Close()
			return "", nil, err
		}
	}
	return l.Addr().String(), func() { l.Close() }, nil
}

// Client is a typed client for a remote Mirror DBMS.
type Client struct{ c *rpc.Client }

// DialMirror connects directly to a Mirror DBMS address.
func DialMirror(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// DiscoverMirror finds the DBMS through the data dictionary and connects.
func DiscoverMirror(dictAddr string) (*Client, error) {
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		return nil, err
	}
	defer dc.Close()
	infos, err := dc.List("dbms")
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no Mirror DBMS registered in the dictionary")
	}
	return DialMirror(infos[0].Addr)
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// remoteError re-types a well-known server failure carried over the wire
// (net/rpc transmits errors as bare strings): the message stays verbatim,
// while Unwrap lets callers errors.Is against the local sentinel — moash
// uses this to print the BuildContentIndex remediation hint for remote
// stores exactly as for local ones.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

// wireErr maps recognised server error strings back to typed errors.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	if msg := err.Error(); strings.Contains(msg, ErrNotIndexed.Error()) {
		return &remoteError{msg: msg, base: ErrNotIndexed}
	}
	return err
}

// TextQuery runs a ranked text (or dual-coding) query.
func (c *Client) TextQuery(text string, k int, dual bool) ([]WireHit, error) {
	var reply TextQueryReply
	err := c.c.Call("Mirror.TextQuery", TextQueryArgs{Text: text, K: k, Dual: dual}, &reply)
	return reply.Hits, wireErr(err)
}

// MoaQuery runs a raw Moa query.
func (c *Client) MoaQuery(src string, queryTerms []string) (*MoaQueryReply, error) {
	return c.MoaQueryTopK(src, queryTerms, 0)
}

// MoaQueryTopK runs a raw Moa query with a ranked top-k request pushed
// down to the server's plan optimizer.
func (c *Client) MoaQueryTopK(src string, queryTerms []string, k int) (*MoaQueryReply, error) {
	var reply MoaQueryReply
	err := c.c.Call("Mirror.MoaQuery", MoaQueryArgs{Source: src, QueryTerms: queryTerms, K: k}, &reply)
	return &reply, wireErr(err)
}

// Refresh asks the remote DBMS to incrementally index pending documents
// and publish a new epoch.
func (c *Client) Refresh() (*RefreshReply, error) {
	var reply RefreshReply
	err := c.c.Call("Mirror.Refresh", dict.Empty{}, &reply)
	return &reply, wireErr(err)
}

// Schema fetches the remote schema.
func (c *Client) Schema() (string, error) {
	var reply SchemaReply
	err := c.c.Call("Mirror.Schema", dict.Empty{}, &reply)
	return reply.Source, err
}

// Checkpoint asks the remote DBMS to flush dirty BATs to its store.
func (c *Client) Checkpoint() (*CheckpointReply, error) {
	var reply CheckpointReply
	err := c.c.Call("Mirror.Checkpoint", dict.Empty{}, &reply)
	return &reply, err
}
