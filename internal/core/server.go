package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"runtime"
	"strings"
	"sync"
	"time"

	"mirror/internal/bat"
	"mirror/internal/dict"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// This file is the network face of the Mirror DBMS (cmd/mirrord): clients
// of Figure 1 reach the meta-data database through the same RPC transport
// the daemons use, and find it through the data dictionary.
//
// Queries execute concurrently: net/rpc dispatches every request in its own
// goroutine and the query path is read-only over immutable BATs (hash
// indexes build atomically), so independent queries genuinely overlap. The
// gate below bounds how many run at once so heavy traffic degrades to
// queueing instead of oversubscribing the cores the parallel BAT kernel is
// already using.

// Retriever is the serving surface of the Mirror DBMS: one store
// (*Mirror) or a sharded scatter-gather engine (*ShardedEngine). The RPC
// service and the shells run against it, so clients cannot tell how many
// stores answer their queries — routing is transparent.
type Retriever interface {
	AddImage(url, annotation string, img *media.Image) error
	AddRaster(url string, img *media.Image) error
	BuildContentIndex(opts IndexOptions) error
	BuildContentIndexDistributed(opts IndexOptions, dictAddr string) error
	QueryAnnotations(text string, k int) ([]Hit, error)
	QueryContent(clusterWords []string, k int) ([]Hit, error)
	QueryDualCoding(text string, k int) ([]Hit, error)
	QueryAnnotationsStamped(text string, k int) ([]Hit, EpochStamp, error)
	QueryDualCodingStamped(text string, k int) ([]Hit, EpochStamp, error)
	Query(src string, queryTerms []string) (*moa.Result, error)
	QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error)
	QueryTopKStamped(src string, queryTerms []string, k int) (*moa.Result, EpochStamp, error)
	ServingEpoch() (EpochStamp, bool)
	ExpandQuery(text string, topK int) []string
	NewSession(text string) (*Session, error)
	ContentTerms(oid bat.OID) []string
	Size() int
	Pending() int
	URLs() []string
	Indexed() bool
	Current() bool
	Refresh() (RefreshStats, error)
	Segments() []SegmentsInfo
	PostingsStats() PostingsStats
	SchemaSource() string
	Thesaurus() *thesaurus.Thesaurus
	Persistent() bool
	Checkpoint() (storage.CheckpointStats, error)
	ClosePersistent() error
}

// Service exposes a Retriever over net/rpc under the name "Mirror".
type Service struct {
	m    Retriever
	gate chan struct{}

	// Feedback sessions are server-side state (the Rocchio weights live
	// with the store that reinforces the thesaurus); clients hold opaque
	// IDs. The table dies with the process — after a restart clients
	// start fresh sessions.
	smu      sync.Mutex
	sessions map[uint64]*serverSession
	lastSess uint64
}

// serverSession serialises one client's session calls: the Session type
// itself is not safe for concurrent use, and net/rpc dispatches every
// request in its own goroutine.
type serverSession struct {
	mu sync.Mutex
	s  *Session
}

// maxServerSessions bounds the session table so leaked client sessions
// cannot grow server memory without bound.
const maxServerSessions = 1024

// defaultQueryGate is the default cap on concurrently executing queries.
func defaultQueryGate() int {
	n := 2 * runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	return n
}

// acquire claims a query slot; the returned func releases it.
func (s *Service) acquire() func() {
	if s.gate == nil {
		return func() {}
	}
	s.gate <- struct{}{}
	return func() { <-s.gate }
}

// WireHit mirrors Hit with wire-safe types.
type WireHit struct {
	OID   uint64
	URL   string
	Score float64
}

// TextQueryArgs asks for a ranked annotation/dual-coding query.
type TextQueryArgs struct {
	Text string
	K    int
	Dual bool // combine annotation and content evidence
}

// TextQueryReply returns the ranking, stamped with the published epoch it
// was served from (Epoch 0 only before the first publish, which TextQuery
// rejects — so replies always carry a real stamp). EpochDocs is the number
// of documents that epoch covers: external exactness checkers compare the
// ranking against a reference build over the first EpochDocs ingested
// documents.
type TextQueryReply struct {
	Hits      []WireHit
	Epoch     int64
	EpochDocs int
}

// MoaQueryArgs carries a raw Moa query plus optional query-term bindings.
// K > 0 pushes a ranked top-k request into the query plan: retrievals the
// pruned operator can serve return only the k best rows (already ranked);
// other plans run exhaustively and are cut server-side.
type MoaQueryArgs struct {
	Source     string
	QueryTerms []string
	K          int
}

// MoaQueryReply returns rows rendered as strings (OID plus value), enough
// for the demo clients; richer clients use the Go API. Epoch/EpochDocs
// stamp the snapshot the plan ran against (zero on the pre-index
// live-database fallback).
type MoaQueryReply struct {
	Scalar    string
	OIDs      []uint64
	Values    []string
	Epoch     int64
	EpochDocs int
}

// SchemaReply returns the DDL of the served database.
type SchemaReply struct{ Source string }

// TextQuery implements ranked retrieval over the wire.
func (s *Service) TextQuery(args TextQueryArgs, reply *TextQueryReply) error {
	defer s.acquire()()
	var hits []Hit
	var st EpochStamp
	var err error
	if args.Dual {
		hits, st, err = s.m.QueryDualCodingStamped(args.Text, args.K)
	} else {
		hits, st, err = s.m.QueryAnnotationsStamped(args.Text, args.K)
	}
	if err != nil {
		return err
	}
	reply.Epoch, reply.EpochDocs = st.Seq, st.Docs
	for _, h := range hits {
		reply.Hits = append(reply.Hits, WireHit{OID: uint64(h.OID), URL: h.URL, Score: h.Score})
	}
	return nil
}

// MoaQuery executes a raw Moa query; args.K > 0 requests a ranked top-k.
func (s *Service) MoaQuery(args MoaQueryArgs, reply *MoaQueryReply) error {
	defer s.acquire()()
	res, st, err := s.m.QueryTopKStamped(args.Source, args.QueryTerms, args.K)
	if err != nil {
		return err
	}
	reply.Epoch, reply.EpochDocs = st.Seq, st.Docs
	if res.Rows == nil {
		reply.Scalar = fmt.Sprintf("%v", res.Scalar)
		return nil
	}
	rows := res.Rows
	if args.K > 0 && !res.Ranked {
		// Exhaustive fallback: rank and cut server-side, so the wire
		// carries only the k best rows either way.
		if args.K < len(rows) {
			rows = moa.TopKRows(rows, args.K)
		} else {
			res.SortByScoreDesc()
			rows = res.Rows
		}
	}
	if args.K > 0 && len(rows) > args.K {
		rows = rows[:args.K]
	}
	for _, row := range rows {
		reply.OIDs = append(reply.OIDs, uint64(row.OID))
		reply.Values = append(reply.Values, fmt.Sprintf("%v", row.Value))
	}
	return nil
}

// Schema returns the database schema.
func (s *Service) Schema(_ dict.Empty, reply *SchemaReply) error {
	reply.Source = s.m.SchemaSource()
	return nil
}

// CheckpointReply reports what a remote-triggered checkpoint wrote.
type CheckpointReply struct {
	Written int   // BATs whose heap files were rewritten
	Skipped int   // clean BATs carried over untouched
	Bytes   int64 // heap-file bytes written
}

// Checkpoint flushes dirty BATs to the store and truncates the WAL;
// operators use it to bound recovery time without restarting. Errors on
// a server not opened with OpenPersistent.
func (s *Service) Checkpoint(_ dict.Empty, reply *CheckpointReply) error {
	st, err := s.m.Checkpoint()
	if err != nil {
		return err
	}
	reply.Written, reply.Skipped, reply.Bytes = st.Written, st.Skipped, st.Bytes
	return nil
}

// RefreshReply reports what a remote-triggered Refresh published.
type RefreshReply struct {
	NewDocs  int   // documents newly covered
	Docs     int   // documents covered after the publish
	Epoch    int64 // published epoch number
	Merges   int   // segment compactions applied
	Segments int   // max segment count after compaction
}

// Refresh incrementally indexes every document ingested since the last
// publish and swaps in a new snapshot epoch; queries are never blocked.
// mirrord drives this periodically via -refresh-every, and operators can
// force it between ticks.
func (s *Service) Refresh(_ dict.Empty, reply *RefreshReply) error {
	st, err := s.m.Refresh()
	if err != nil {
		return err
	}
	reply.NewDocs, reply.Docs, reply.Epoch = st.NewDocs, st.Docs, st.Epoch
	reply.Merges, reply.Segments = st.Merges, st.Segments
	return nil
}

// AddImageArgs carries one document over the wire: URL, annotation and
// the raster as PPM bytes (decoded server-side, so the wire format is the
// media server's own).
type AddImageArgs struct {
	URL        string
	Annotation string
	PPM        []byte
}

// AddImageReply reports the library state after the insert.
type AddImageReply struct {
	Size    int // documents in the library
	Pending int // documents not yet covered by the serving epoch
}

// AddImage ingests one document over RPC: the insert is WAL-logged
// exactly like a crawled one and becomes retrievable at the next Refresh
// publish. Load generators use this to drive ingest without a re-crawl.
func (s *Service) AddImage(args AddImageArgs, reply *AddImageReply) error {
	img, err := media.DecodePPM(bytes.NewReader(args.PPM))
	if err != nil {
		return fmt.Errorf("core: decode PPM for %s: %v", args.URL, err)
	}
	if err := s.m.AddImage(args.URL, args.Annotation, img); err != nil {
		return err
	}
	reply.Size, reply.Pending = s.m.Size(), s.m.Pending()
	return nil
}

// StatsReply is a point-in-time operational snapshot of the served store
// (moash \stats, the load harness's oracle bookkeeping).
type StatsReply struct {
	Size      int   // documents ingested
	Pending   int   // ingested but not covered by the serving epoch
	Indexed   bool  // a content index epoch has been published
	Current   bool  // the serving epoch covers every ingested document
	Epoch     int64 // serving epoch sequence (0 before the first publish)
	EpochDocs int   // documents the serving epoch covers

	// Cumulative block-max scan counters (monotone since process start;
	// on a router, a best-effort sum over reachable shard primaries).
	BlocksDecoded int64
	BlocksSkipped int64
}

// blockScanReporter is the optional engine hook behind StatsReply's scan
// counters: engines whose scans run in other processes (the distributed
// router) implement it to aggregate; everyone else gets the process-wide
// bat counters, which every in-process store shares.
type blockScanReporter interface {
	BlockScanStats() (decoded, skipped int64)
}

// Stats reports the serving state. The epoch stamp only brackets
// concurrently running queries (each pins its own epoch); per-answer
// stamps ride on the query replies themselves.
func (s *Service) Stats(_ dict.Empty, reply *StatsReply) error {
	st, _ := s.m.ServingEpoch()
	reply.Size = s.m.Size()
	reply.Pending = s.m.Pending()
	reply.Indexed = s.m.Indexed()
	reply.Current = s.m.Current()
	reply.Epoch, reply.EpochDocs = st.Seq, st.Docs
	if r, ok := s.m.(blockScanReporter); ok {
		reply.BlocksDecoded, reply.BlocksSkipped = r.BlockScanStats()
	} else {
		reply.BlocksDecoded, reply.BlocksSkipped = bat.BlockScanStats()
	}
	return nil
}

// SessionStartArgs opens a relevance-feedback session for a text query.
type SessionStartArgs struct{ Text string }

// SessionStartReply returns the server-side session handle.
type SessionStartReply struct{ ID uint64 }

// SessionStart opens a server-side feedback session (Section 5.2's
// interactive loop) and returns its handle. Sessions are process-local:
// a restarted server forgets them, and clients start over.
func (s *Service) SessionStart(args SessionStartArgs, reply *SessionStartReply) error {
	sess, err := s.m.NewSession(args.Text)
	if err != nil {
		return err
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.sessions == nil {
		s.sessions = make(map[uint64]*serverSession)
	}
	if len(s.sessions) >= maxServerSessions {
		return fmt.Errorf("core: session table full (%d live sessions; SessionEnd some)", maxServerSessions)
	}
	s.lastSess++
	s.sessions[s.lastSess] = &serverSession{s: sess}
	reply.ID = s.lastSess
	return nil
}

// lookupSession resolves a session handle.
func (s *Service) lookupSession(id uint64) (*serverSession, error) {
	s.smu.Lock()
	defer s.smu.Unlock()
	ss, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown session %d (sessions do not survive a server restart)", id)
	}
	return ss, nil
}

// SessionRunArgs evaluates a session's current query.
type SessionRunArgs struct {
	ID uint64
	K  int
}

// SessionRunReply returns the session ranking and the feedback round it
// reflects.
type SessionRunReply struct {
	Round int
	Hits  []WireHit
}

// SessionRun evaluates the session's current (text + weighted content)
// query and returns the top k hits.
func (s *Service) SessionRun(args SessionRunArgs, reply *SessionRunReply) error {
	ss, err := s.lookupSession(args.ID)
	if err != nil {
		return err
	}
	defer s.acquire()()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	hits, err := ss.s.Run(args.K)
	if err != nil {
		return err
	}
	reply.Round = ss.s.Round
	for _, h := range hits {
		reply.Hits = append(reply.Hits, WireHit{OID: uint64(h.OID), URL: h.URL, Score: h.Score})
	}
	return nil
}

// SessionFeedbackArgs applies one round of relevance judgments.
type SessionFeedbackArgs struct {
	ID          uint64
	Relevant    []uint64 // OIDs judged relevant
	Nonrelevant []uint64 // OIDs judged non-relevant
}

// SessionFeedbackReply reports the feedback round after the judgments.
type SessionFeedbackReply struct{ Round int }

// SessionFeedback applies judgments: the session's content weights move
// Rocchio-style and the thesaurus reinforcement is WAL-logged on
// persistent stores (it survives restarts even though the session does
// not).
func (s *Service) SessionFeedback(args SessionFeedbackArgs, reply *SessionFeedbackReply) error {
	ss, err := s.lookupSession(args.ID)
	if err != nil {
		return err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if err := ss.s.Feedback(toOIDs(args.Relevant), toOIDs(args.Nonrelevant)); err != nil {
		return err
	}
	reply.Round = ss.s.Round
	return nil
}

// SessionEndArgs closes a session.
type SessionEndArgs struct{ ID uint64 }

// SessionEnd drops the session from the table; unknown IDs are a no-op
// (the table is already gone after a restart).
func (s *Service) SessionEnd(args SessionEndArgs, _ *dict.Empty) error {
	s.smu.Lock()
	defer s.smu.Unlock()
	delete(s.sessions, args.ID)
	return nil
}

// toOIDs converts wire OIDs.
func toOIDs(in []uint64) []bat.OID {
	out := make([]bat.OID, len(in))
	for i, v := range in {
		out[i] = bat.OID(v)
	}
	return out
}

// Serve runs the Mirror DBMS server on addr ("127.0.0.1:0" for ephemeral)
// and registers it with the dictionary when dictAddr is non-empty. It
// returns the bound address and a stop function.
func (m *Mirror) Serve(addr, dictAddr string) (string, func(), error) {
	return Serve(m, addr, dictAddr)
}

// Serve runs the RPC server for any Retriever — a single store, a
// sharded engine or a distributed router; the wire protocol is identical
// either way. The returned stop function closes the listener and then
// DRAINS: it waits (bounded) for every in-flight RPC handler to write its
// response before returning, so stopping a server never strands a client
// mid-call with a torn connection.
func Serve(r Retriever, addr, dictAddr string) (string, func(), error) {
	return ServeAs(r, addr, dictAddr, "dbms", "mirror-dbms")
}

// serveDrainTimeout bounds how long a stop function waits for in-flight
// RPC handlers; a handler wedged past this is abandoned (the process is
// exiting anyway).
const serveDrainTimeout = 5 * time.Second

// ServeAs is Serve with an explicit dictionary identity: shard daemons
// register as kind "mirror-shard" under their layout position, so the
// router discovers members without static addressing. Only the "dbms"
// kind publishes its schema to the dictionary — shard members must not
// overwrite the engine-wide entry.
func ServeAs(r Retriever, addr, dictAddr, kind, name string) (string, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("core: listen %s: %w", addr, err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Mirror", &Service{m: r, gate: make(chan struct{}, defaultQueryGate())}); err != nil {
		l.Close()
		return "", nil, err
	}
	drain := &rpcDrain{}
	var connMu sync.Mutex
	conns := map[net.Conn]struct{}{}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns[conn] = struct{}{}
			connMu.Unlock()
			go func() {
				srv.ServeCodec(newCountedServerCodec(conn, drain))
				connMu.Lock()
				delete(conns, conn)
				connMu.Unlock()
			}()
		}
	}()
	if dictAddr != "" {
		dc, err := dict.Dial(dictAddr)
		if err != nil {
			l.Close()
			return "", nil, err
		}
		defer dc.Close()
		if err := dc.Register(dict.DaemonInfo{
			Name: name, Kind: kind, Addr: l.Addr().String(),
		}); err != nil {
			l.Close()
			return "", nil, err
		}
		if kind == "dbms" {
			if err := dc.SetSchema(r.SchemaSource()); err != nil {
				l.Close()
				return "", nil, err
			}
		}
	}
	stop := func() {
		// No new connections, drain handlers already computing (their
		// replies reach the wire), then drop the established connections —
		// a stopped server must look down to its peers, not wedge them.
		l.Close()
		drain.wait(serveDrainTimeout)
		connMu.Lock()
		for conn := range conns {
			conn.Close()
		}
		connMu.Unlock()
	}
	return l.Addr().String(), stop, nil
}

// rpcDrain counts in-flight RPC handlers so a stopping server can wait
// for responses already being computed to reach the wire. A handler is
// in flight from the moment its request header is read until its
// response is written (net/rpc writes a response — real or error — for
// every successfully read header, so the count is balanced).
type rpcDrain struct {
	mu      sync.Mutex
	pending int
	done    chan struct{} // non-nil while a drain waits; closed at pending==0
}

func (d *rpcDrain) start() {
	d.mu.Lock()
	d.pending++
	d.mu.Unlock()
}

func (d *rpcDrain) finish() {
	d.mu.Lock()
	d.pending--
	if d.pending == 0 && d.done != nil {
		close(d.done)
		d.done = nil
	}
	d.mu.Unlock()
}

// wait blocks until no handler is in flight, or the timeout passes.
func (d *rpcDrain) wait(timeout time.Duration) {
	d.mu.Lock()
	if d.pending == 0 {
		d.mu.Unlock()
		return
	}
	if d.done == nil {
		d.done = make(chan struct{})
	}
	ch := d.done
	d.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	}
}

// gobServerCodec is the standard net/rpc gob wire format over a buffered
// connection; spelled out here (net/rpc keeps its own unexported) so the
// counting wrapper below can sit between the server loop and the wire.
type gobServerCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	closed bool
}

func (c *gobServerCodec) ReadRequestHeader(r *rpc.Request) error { return c.dec.Decode(r) }
func (c *gobServerCodec) ReadRequestBody(body any) error         { return c.dec.Decode(body) }

func (c *gobServerCodec) WriteResponse(r *rpc.Response, body any) (err error) {
	if err = c.enc.Encode(r); err != nil {
		if c.encBuf.Flush() == nil {
			c.Close() // encode failure poisons the stream; tear it down
		}
		return
	}
	if err = c.enc.Encode(body); err != nil {
		if c.encBuf.Flush() == nil {
			c.Close()
		}
		return
	}
	return c.encBuf.Flush()
}

func (c *gobServerCodec) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.rwc.Close()
}

// countedServerCodec marks a request in flight when its header is read
// and done when its response is written, feeding the drain.
type countedServerCodec struct {
	rpc.ServerCodec
	d *rpcDrain
}

func newCountedServerCodec(conn net.Conn, d *rpcDrain) rpc.ServerCodec {
	buf := bufio.NewWriter(conn)
	return &countedServerCodec{
		ServerCodec: &gobServerCodec{rwc: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(buf), encBuf: buf},
		d:           d,
	}
}

func (c *countedServerCodec) ReadRequestHeader(r *rpc.Request) error {
	err := c.ServerCodec.ReadRequestHeader(r)
	if err == nil {
		c.d.start()
	}
	return err
}

func (c *countedServerCodec) WriteResponse(r *rpc.Response, body any) error {
	defer c.d.finish()
	return c.ServerCodec.WriteResponse(r, body)
}

// Client is a typed client for a remote Mirror DBMS.
type Client struct {
	c *rpc.Client
	// timeout bounds each call; 0 waits forever. A timed-out call closes
	// the connection (net/rpc has no per-call cancel), so the Client is
	// dead afterwards — exactly what the router's replica failover wants.
	timeout time.Duration
}

// DialMirror connects directly to a Mirror DBMS address.
func DialMirror(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// DialMirrorTimeout is DialMirror with a bound on connection establishment
// and every subsequent call (SetCallTimeout).
func DialMirrorTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", addr, err)
	}
	return &Client{c: rpc.NewClient(conn), timeout: d}, nil
}

// SetCallTimeout bounds every subsequent call on this client; 0 restores
// unbounded calls.
func (c *Client) SetCallTimeout(d time.Duration) { c.timeout = d }

// call issues one RPC, honouring the call timeout. On timeout the
// connection is closed: net/rpc cannot cancel a single in-flight call,
// and a half-dead connection must look like a transport failure so
// callers fail over instead of hanging.
func (c *Client) call(method string, args, reply any) error {
	if c.timeout <= 0 {
		return c.c.Call(method, args, reply)
	}
	call := c.c.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-t.C:
		c.c.Close()
		<-call.Done
		if call.Error == nil {
			return nil // completed as the timer fired
		}
		return fmt.Errorf("core: %s timed out after %v", method, c.timeout)
	}
}

// DiscoverMirror finds the DBMS through the data dictionary and connects.
func DiscoverMirror(dictAddr string) (*Client, error) {
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		return nil, err
	}
	defer dc.Close()
	infos, err := dc.List("dbms")
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no Mirror DBMS registered in the dictionary")
	}
	return DialMirror(infos[0].Addr)
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// remoteError re-types a well-known server failure carried over the wire
// (net/rpc transmits errors as bare strings): the message stays verbatim,
// while Unwrap lets callers errors.Is against the local sentinel — moash
// uses this to print the BuildContentIndex remediation hint for remote
// stores exactly as for local ones.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

// wireErr maps recognised server error strings back to typed errors.
// Because the message stays verbatim, re-typing composes across hops: a
// router that returns a shard's error to its own client produces the
// same message, and the second wireErr re-types it identically.
func wireErr(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	for _, base := range []error{ErrNotIndexed, ErrEpochRetired, ErrFollower} {
		if strings.Contains(msg, base.Error()) {
			return &remoteError{msg: msg, base: base}
		}
	}
	return err
}

// TextQuery runs a ranked text (or dual-coding) query.
func (c *Client) TextQuery(text string, k int, dual bool) ([]WireHit, error) {
	reply, err := c.TextQueryStamped(text, k, dual)
	return reply.Hits, err
}

// TextQueryStamped is TextQuery returning the full reply, including the
// epoch stamp of the snapshot the answer was served from.
func (c *Client) TextQueryStamped(text string, k int, dual bool) (*TextQueryReply, error) {
	var reply TextQueryReply
	err := c.call("Mirror.TextQuery", TextQueryArgs{Text: text, K: k, Dual: dual}, &reply)
	return &reply, wireErr(err)
}

// AddImage ingests one document (PPM raster bytes) into the remote store.
func (c *Client) AddImage(url, annotation string, ppm []byte) (*AddImageReply, error) {
	var reply AddImageReply
	err := c.call("Mirror.AddImage", AddImageArgs{URL: url, Annotation: annotation, PPM: ppm}, &reply)
	return &reply, err
}

// Stats fetches the remote serving-state snapshot.
func (c *Client) Stats() (*StatsReply, error) {
	var reply StatsReply
	err := c.call("Mirror.Stats", dict.Empty{}, &reply)
	return &reply, err
}

// SessionStart opens a remote relevance-feedback session.
func (c *Client) SessionStart(text string) (uint64, error) {
	var reply SessionStartReply
	err := c.call("Mirror.SessionStart", SessionStartArgs{Text: text}, &reply)
	return reply.ID, wireErr(err)
}

// SessionRun evaluates the session's current query.
func (c *Client) SessionRun(id uint64, k int) (*SessionRunReply, error) {
	var reply SessionRunReply
	err := c.call("Mirror.SessionRun", SessionRunArgs{ID: id, K: k}, &reply)
	return &reply, wireErr(err)
}

// SessionFeedback applies one round of relevance judgments.
func (c *Client) SessionFeedback(id uint64, relevant, nonrelevant []uint64) (*SessionFeedbackReply, error) {
	var reply SessionFeedbackReply
	err := c.call("Mirror.SessionFeedback",
		SessionFeedbackArgs{ID: id, Relevant: relevant, Nonrelevant: nonrelevant}, &reply)
	return &reply, wireErr(err)
}

// SessionEnd closes a remote session.
func (c *Client) SessionEnd(id uint64) error {
	var reply dict.Empty
	return c.call("Mirror.SessionEnd", SessionEndArgs{ID: id}, &reply)
}

// MoaQuery runs a raw Moa query.
func (c *Client) MoaQuery(src string, queryTerms []string) (*MoaQueryReply, error) {
	return c.MoaQueryTopK(src, queryTerms, 0)
}

// MoaQueryTopK runs a raw Moa query with a ranked top-k request pushed
// down to the server's plan optimizer.
func (c *Client) MoaQueryTopK(src string, queryTerms []string, k int) (*MoaQueryReply, error) {
	var reply MoaQueryReply
	err := c.call("Mirror.MoaQuery", MoaQueryArgs{Source: src, QueryTerms: queryTerms, K: k}, &reply)
	return &reply, wireErr(err)
}

// Refresh asks the remote DBMS to incrementally index pending documents
// and publish a new epoch.
func (c *Client) Refresh() (*RefreshReply, error) {
	var reply RefreshReply
	err := c.call("Mirror.Refresh", dict.Empty{}, &reply)
	return &reply, wireErr(err)
}

// Schema fetches the remote schema.
func (c *Client) Schema() (string, error) {
	var reply SchemaReply
	err := c.call("Mirror.Schema", dict.Empty{}, &reply)
	return reply.Source, err
}

// Checkpoint asks the remote DBMS to flush dirty BATs to its store.
func (c *Client) Checkpoint() (*CheckpointReply, error) {
	var reply CheckpointReply
	err := c.call("Mirror.Checkpoint", dict.Empty{}, &reply)
	return &reply, err
}
