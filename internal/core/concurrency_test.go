package core

import (
	"fmt"
	"sync"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/corpus"
)

// TestParallelPipelineMatchesSerial builds the content index twice — once
// with the worker pool forced to 1 (serial reference) and once with 4
// workers — and requires the resulting databases to answer identically:
// the parallel extraction fan-out must not change what gets indexed.
func TestParallelPipelineMatchesSerial(t *testing.T) {
	build := func(par int) *Mirror {
		old := bat.SetParallelism(par)
		defer bat.SetParallelism(old)
		items := corpus.Generate(corpus.Config{N: 12, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
		m, err := New()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				t.Fatal(err)
			}
		}
		opts := DefaultIndexOptions()
		opts.Features = []string{"rgb_coarse", "gabor"}
		opts.KMax = 6
		if err := m.BuildContentIndex(opts); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ser := build(1)
	par := build(4)
	for oid := bat.OID(0); oid < 12; oid++ {
		s, p := ser.ContentTerms(oid), par.ContentTerms(oid)
		if fmt.Sprint(s) != fmt.Sprint(p) {
			t.Fatalf("content terms for %d diverge: %v vs %v", oid, s, p)
		}
	}
	for _, q := range []string{"water", "forest", "sunshine"} {
		sh, err := ser.QueryAnnotations(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		ph, err := par.QueryAnnotations(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(sh) != len(ph) {
			t.Fatalf("%q: %d vs %d hits", q, len(sh), len(ph))
		}
		for i := range sh {
			if sh[i].OID != ph[i].OID || sh[i].Score != ph[i].Score {
				t.Fatalf("%q hit %d: %+v vs %+v", q, i, sh[i], ph[i])
			}
		}
	}
}

// TestConcurrentQueriesOverlap hammers one served Mirror DBMS with many
// clients issuing text, dual-coding, and raw Moa queries at once, with the
// parallel BAT kernel forced on. Every response must match the
// single-client answer; -race in CI checks the read path (shared BATs,
// lazily built hash indexes, the worker pool) for data races.
func TestConcurrentQueriesOverlap(t *testing.T) {
	m, items := buildDemo(t, 12)
	addr, stop, err := m.Serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	oldP := bat.SetParallelism(4)
	oldT := bat.SetParallelThreshold(1)
	defer func() {
		bat.SetParallelism(oldP)
		bat.SetParallelThreshold(oldT)
	}()

	term := corpus.CanonicalTerm(mostAnnotatedClass(items))
	ref, err := DialMirror(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	wantHits, err := ref.TextQuery(term, 5, false)
	if err != nil || len(wantHits) == 0 {
		t.Fatalf("reference hits: %v, %v", wantHits, err)
	}
	wantCount, err := ref.MoaQuery(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialMirror(addr)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			for it := 0; it < 4; it++ {
				hits, err := c.TextQuery(term, 5, it%2 == 1)
				if err != nil {
					errs[g] = err
					return
				}
				if len(hits) == 0 {
					errs[g] = fmt.Errorf("client %d: no hits", g)
					return
				}
				if it%2 == 0 && (len(hits) != len(wantHits) || hits[0].OID != wantHits[0].OID) {
					errs[g] = fmt.Errorf("client %d: hits diverged: %v vs %v", g, hits, wantHits)
					return
				}
				reply, err := c.MoaQuery(`count(ImageLibraryInternal);`, nil)
				if err != nil {
					errs[g] = err
					return
				}
				if reply.Scalar != wantCount.Scalar {
					errs[g] = fmt.Errorf("client %d: count %q want %q", g, reply.Scalar, wantCount.Scalar)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
