//go:build pooldebug

package core

import (
	"math"
	"sync/atomic"

	"mirror/internal/ir"
)

// pooldebug: dynamic accounting for the []ir.Ranked scratch pool.
//
// Slice identity is not stable across RankInto (append may reallocate the
// backing array), so unlike the ir.Scores registry this tracks a live
// counter rather than pointers: leak tests snapshot LiveRanked around a
// query path and require the delta be zero. Released slices have their
// retained capacity poisoned so a stale alias reads garbage loudly.
//
//poolcheck:poolfile

var rankedLive atomic.Int64

func rankedBorrowed() { rankedLive.Add(1) }

func rankedReleased(r []ir.Ranked) {
	rankedLive.Add(-1)
	for i := range r[:cap(r)] {
		r[:cap(r)][i] = ir.Ranked{Doc: ^uint64(0), Score: math.NaN()}
	}
}

// LiveRanked reports the number of borrowed-but-unreleased ranking slices.
func LiveRanked() int { return int(rankedLive.Load()) }
