package core_test

// Two-hop wire semantics: a client talks to a served RouterEngine, which
// talks to shard daemons — errors and epoch stamps cross TWO net/rpc
// boundaries. net/rpc flattens errors to strings, so each hop's client
// side re-types the well-known sentinels from the verbatim message; these
// tests pin that the composition works (a shard's typed error surfaces
// as errors.Is-able at the outermost client, message intact) and that
// the router's epoch-vector stamp rides every reply unchanged.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/dist"
)

// startHopTopology serves one shard (primary + follower) behind a router,
// itself served over RPC: client → router server → shard server.
func startHopTopology(t *testing.T) (router *dist.RouterEngine, outerAddr string, primary *core.Mirror, follower *core.Mirror, primAddr string, stopPrimary func()) {
	t.Helper()
	pm, err := core.NewShardMember(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm.KeepEpochHistory(8)
	pm.EnableShipping()
	pAddr, pStop, err := core.ServeAs(pm, "127.0.0.1:0", "", "mirror-shard", "shard-0-of-1")
	if err != nil {
		t.Fatal(err)
	}

	fm, err := core.NewShardMember(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	fm.KeepEpochHistory(8)
	fm.SetFollower()
	fAddr, fStop, err := core.ServeAs(fm, "127.0.0.1:0", "", "mirror-shard", "shard-0-of-1-follower-t")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fStop)

	r, err := dist.NewRouter([][]string{{pAddr, fAddr}}, dist.Options{
		Timeout: 5 * time.Second, Retries: 1, Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	oAddr, oStop, err := core.Serve(r, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oStop)
	return r, oAddr, pm, fm, pAddr, pStop
}

func TestTwoHopTypedErrorsAndStamps(t *testing.T) {
	router, outerAddr, _, follower, primAddr, stopPrimary := startHopTopology(t)
	c, err := core.DialMirror(outerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pre-index: the router refuses with ErrNotIndexed; the outer hop
	// must deliver it errors.Is-able with the message verbatim.
	if _, err := c.TextQueryStamped("tiger", 3, false); !errors.Is(err, core.ErrNotIndexed) {
		t.Fatalf("pre-index error over two hops = %v, want ErrNotIndexed", err)
	} else if !strings.Contains(err.Error(), core.ErrNotIndexed.Error()) {
		t.Fatalf("pre-index message not verbatim: %v", err)
	}

	items := corpus.Generate(corpus.Config{N: 10, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
	for _, it := range items {
		if err := router.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 6
	if err := router.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := dist.FollowOnce(follower, primAddr, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Stamps ride both hops: the reply's epoch stamp is the router's
	// serving vector, byte for byte.
	want, ok := router.ServingEpoch()
	if !ok {
		t.Fatal("router not serving after build")
	}
	term := corpus.CanonicalTerm(0)
	rep, err := c.TextQueryStamped(term, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != want.Seq || rep.EpochDocs != want.Docs {
		t.Fatalf("text stamp over two hops = %d/%d, want %d/%d", rep.Epoch, rep.EpochDocs, want.Seq, want.Docs)
	}
	annSrc := `
	map[sum(THIS)](
		map[getBL(THIS.annotation, query, stats)]( ImageLibraryInternal ));`
	moa, err := c.MoaQueryTopK(annSrc, []string{term}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if moa.Epoch != want.Seq || moa.EpochDocs != want.Docs {
		t.Fatalf("moa stamp over two hops = %d/%d, want %d/%d", moa.Epoch, moa.EpochDocs, want.Seq, want.Docs)
	}

	// Advance the primary past the follower (ingest + refresh, no
	// catch-up), then kill the primary: the router's pinned tag exists
	// nowhere reachable, and the shard-side ErrEpochRetired must cross
	// both hops errors.Is-able after the bounded failover gives up.
	extra := corpus.Generate(corpus.Config{N: 12, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})[10:]
	for _, it := range extra {
		if err := router.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := router.Refresh(); err != nil {
		t.Fatal(err)
	}
	stopPrimary()
	_, err = c.TextQueryStamped(term, 3, false)
	if !errors.Is(err, core.ErrEpochRetired) {
		t.Fatalf("stale-follower error over two hops = %v, want ErrEpochRetired", err)
	}
	if !strings.Contains(err.Error(), "epoch retired") {
		t.Fatalf("stale-follower message not verbatim: %v", err)
	}
}
