package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"

	"mirror/internal/cluster"
)

// ---- deterministic stub pipeline ----
//
// The differential guarantee under test is about the INDEXING machinery —
// delta segments, merged statistics, compaction, epochs — not about
// clustering. A real pipeline refits its mixture models on every full
// build, so "batch+deltas vs one-shot" would compare different content
// vocabularies. The stub pins that variable: extraction is a pure
// function of the URL and fit returns a FIXED nearest-anchor codebook, so
// one-shot clustering and incremental frozen-codebook assignment agree by
// construction, and any divergence the tests catch is real.

var stubFeatureNames = []string{"stub_a", "stub_b"}

type stubPipeline struct{}

func (stubPipeline) features() []string { return stubFeatureNames }
func (stubPipeline) close()             {}

func stubHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (stubPipeline) segment(url string) ([][][4]int, error) {
	n := int(stubHash(url)%3) + 1
	out := make([][][4]int, n)
	for i := range out {
		out[i] = [][4]int{{i, 0, 1, 1}}
	}
	return out, nil
}

func (stubPipeline) extract(url, fname string, tiles [][4]int) ([]float64, error) {
	k := float64(stubHash(fmt.Sprintf("%s|%s|%v", url, fname, tiles)) % 4)
	return []float64{k * 10, 100 - k*10}, nil // exactly on anchor k
}

func stubSpaceCodebook() *SpaceCodebook {
	model := &cluster.Model{K: 4, D: 2, Weights: make([]float64, 4)}
	for k := 0; k < 4; k++ {
		model.Weights[k] = 0.25
		model.Means = append(model.Means, []float64{float64(k) * 10, 100 - float64(k)*10})
		model.Vars = append(model.Vars, []float64{1, 1})
	}
	return &SpaceCodebook{Means: []float64{0, 0}, Stds: []float64{1, 1}, Model: model}
}

func (stubPipeline) fit(data [][]float64, _, _ int, _ int64) ([]int, *SpaceCodebook, error) {
	sc := stubSpaceCodebook()
	assign := make([]int, len(data))
	for i, x := range data {
		assign[i] = sc.Assign(x)
	}
	return assign, sc, nil
}

// ---- corpus ----

var refreshVocab = []string{
	"harbor", "harbor", "gull", "gull", "tide", "pier", "rope", "salt",
	"mist", "buoy", "anchor", "kelp", "foam", "driftwood", "lantern",
}

func refreshCorpus(n int, seed int64) (urls, anns []string) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		urls = append(urls, fmt.Sprintf("img://doc-%03d", i))
		if rng.Intn(6) == 0 {
			anns = append(anns, "") // empty annotations still count in N/avgdl
			continue
		}
		var sb strings.Builder
		for j, m := 0, 1+rng.Intn(6); j < m; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(refreshVocab[rng.Intn(len(refreshVocab))])
		}
		anns = append(anns, sb.String())
	}
	return urls, anns
}

// oneShotStub builds a single store over docs[:n] with one full build.
func oneShotStub(t *testing.T, urls, anns []string) *Mirror {
	t.Helper()
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for i := range urls {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	return m
}

func refreshStub(t *testing.T, m *Mirror) RefreshStats {
	t.Helper()
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	st, err := m.refreshWith(stubPipeline{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func engineRefreshStub(t *testing.T, e *ShardedEngine) RefreshStats {
	t.Helper()
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	st, err := e.refreshWith(stubPipeline{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].OID != b[i].OID || a[i].Score != b[i].Score || a[i].URL != b[i].URL {
			return false
		}
	}
	return true
}

type retrievalSite interface {
	QueryAnnotations(text string, k int) ([]Hit, error)
	QueryContent(clusterWords []string, k int) ([]Hit, error)
	QueryDualCoding(text string, k int) ([]Hit, error)
}

// assertSameRetrieval compares annotation, content and dual-coding
// retrieval BUN-for-BUN between two sites.
func assertSameRetrieval(t *testing.T, label string, want, got retrievalSite, k int) {
	t.Helper()
	for _, q := range []string{"harbor gull", "tide", "kelp foam buoy", "lantern mist salt", "gull gull pier"} {
		wh, err := want.QueryAnnotations(q, k)
		if err != nil {
			t.Fatalf("%s: ref ann %q: %v", label, q, err)
		}
		gh, err := got.QueryAnnotations(q, k)
		if err != nil {
			t.Fatalf("%s: got ann %q: %v", label, q, err)
		}
		if !hitsEqual(wh, gh) {
			t.Fatalf("%s: annotation ranking for %q diverges:\n  want %v\n  got  %v", label, q, wh, gh)
		}
		dw, err := want.QueryDualCoding(q, k)
		if err != nil {
			t.Fatalf("%s: ref dual %q: %v", label, q, err)
		}
		dg, err := got.QueryDualCoding(q, k)
		if err != nil {
			t.Fatalf("%s: got dual %q: %v", label, q, err)
		}
		if !hitsEqual(dw, dg) {
			t.Fatalf("%s: dual-coding ranking for %q diverges:\n  want %v\n  got  %v", label, q, dw, dg)
		}
	}
	for _, cw := range [][]string{{"stub_a_0", "stub_b_2"}, {"stub_a_1", "stub_a_3", "stub_b_0"}} {
		wh, err := want.QueryContent(cw, k)
		if err != nil {
			t.Fatalf("%s: ref content %v: %v", label, cw, err)
		}
		gh, err := got.QueryContent(cw, k)
		if err != nil {
			t.Fatalf("%s: got content %v: %v", label, cw, err)
		}
		if !hitsEqual(wh, gh) {
			t.Fatalf("%s: content ranking for %v diverges:\n  want %v\n  got  %v", label, cw, wh, gh)
		}
	}
}

// TestIncrementalEqualsOneShotSingleStore is the core differential
// guarantee: batch build + N delta refreshes (+ the background merges the
// policy triggers), over random interleavings, answers every retrieval
// BUN-for-BUN identically to one BuildContentIndex over the same corpus.
func TestIncrementalEqualsOneShotSingleStore(t *testing.T) {
	for round := 0; round < 6; round++ {
		rng := rand.New(rand.NewSource(int64(100 + round)))
		n := 20 + rng.Intn(25)
		urls, anns := refreshCorpus(n, int64(round))
		ref := oneShotStub(t, urls, anns)

		inc, err := New()
		if err != nil {
			t.Fatal(err)
		}
		batch := 1 + rng.Intn(n-1)
		for i := 0; i < batch; i++ {
			if err := inc.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := inc.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
			t.Fatal(err)
		}
		refreshes := 0
		for at := batch; at < n; {
			step := 1 + rng.Intn(n-at)
			for i := at; i < at+step; i++ {
				if err := inc.AddImage(urls[i], anns[i], nil); err != nil {
					t.Fatal(err)
				}
			}
			at += step
			refreshStub(t, inc)
			refreshes++
		}
		if !inc.Current() {
			t.Fatal("incremental store not current after final refresh")
		}
		label := fmt.Sprintf("round %d (n=%d batch=%d refreshes=%d segs=%d)",
			round, n, batch, refreshes, inc.maxSegments())
		assertSameRetrieval(t, label, ref, inc, 10)
		assertSameRetrieval(t, label+" full", ref, inc, 0)

		// Raw Moa query path over the epoch, BUN-for-BUN.
		wres, err := ref.QueryTopK(annotationQuery, AnalyzeQuery("harbor tide"), 7)
		if err != nil {
			t.Fatal(err)
		}
		gres, err := inc.QueryTopK(annotationQuery, AnalyzeQuery("harbor tide"), 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(wres.Rows) != len(gres.Rows) {
			t.Fatalf("%s: raw rows %d vs %d", label, len(wres.Rows), len(gres.Rows))
		}
		for i := range wres.Rows {
			if wres.Rows[i].OID != gres.Rows[i].OID || wres.Rows[i].Value != gres.Rows[i].Value {
				t.Fatalf("%s: raw row %d: %+v vs %+v", label, i, wres.Rows[i], gres.Rows[i])
			}
		}
	}
}

// TestIncrementalEqualsOneShotSharded extends the guarantee across shard
// counts: for N ∈ {1, 2, 8}, batch + refreshes on the sharded engine ≡
// one-shot on the sharded engine ≡ one-shot on a single store.
func TestIncrementalEqualsOneShotSharded(t *testing.T) {
	const n = 30
	urls, anns := refreshCorpus(n, 7)
	single := oneShotStub(t, urls, anns)
	for _, shards := range []int{1, 2, 8} {
		ref, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := range urls {
			if err := ref.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := ref.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
			t.Fatal(err)
		}

		inc, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		batch := 8 + rng.Intn(10)
		for i := 0; i < batch; i++ {
			if err := inc.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := inc.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
			t.Fatal(err)
		}
		for at := batch; at < n; {
			step := 1 + rng.Intn(n-at)
			for i := at; i < at+step; i++ {
				if err := inc.AddImage(urls[i], anns[i], nil); err != nil {
					t.Fatal(err)
				}
			}
			at += step
			engineRefreshStub(t, inc)
		}
		if !inc.Current() {
			t.Fatalf("%d shards: engine not current after refreshes", shards)
		}
		label := fmt.Sprintf("%d shards", shards)
		assertSameRetrieval(t, label+" inc-vs-sharded-oneshot", ref, inc, 10)
		assertSameRetrieval(t, label+" inc-vs-single-oneshot", single, inc, 10)
		assertSameRetrieval(t, label+" full-ranking", single, inc, 0)
	}
}

// TestRefreshIsSnapshotIsolated pins the epoch semantics: a query result
// pinned before a refresh is unaffected by it, and Indexed()/Current()
// report the pending state honestly.
func TestRefreshIsSnapshotIsolated(t *testing.T) {
	urls, anns := refreshCorpus(16, 3)
	m := oneShotStub(t, urls[:12], anns[:12])
	ep := m.currentEpoch()
	before, err := ep.queryAnnotations("harbor gull", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 16; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Indexed() || m.Current() {
		t.Fatalf("Indexed=%v Current=%v, want true/false", m.Indexed(), m.Current())
	}
	if m.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", m.Pending())
	}
	st := refreshStub(t, m)
	if st.NewDocs != 4 || !m.Current() {
		t.Fatalf("refresh covered %d docs (current=%v), want 4/true", st.NewDocs, m.Current())
	}
	// The pinned pre-refresh epoch still answers exactly as before.
	after, err := ep.queryAnnotations("harbor gull", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hitsEqual(before, after) {
		t.Fatal("pinned epoch's answer changed under a concurrent refresh")
	}
	if nep := m.currentEpoch(); nep.Seq <= ep.Seq || nep.Docs != 16 {
		t.Fatalf("new epoch seq=%d docs=%d, want seq>%d docs=16", nep.Seq, nep.Docs, ep.Seq)
	}
}

// TestErrNotIndexedTyped pins the typed error contract locally and over
// the RPC surface (verbatim message, errors.Is-able on the client).
func TestErrNotIndexedTyped(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryAnnotations("anything", 3); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("QueryAnnotations err = %v, want ErrNotIndexed", err)
	}
	if _, err := m.QueryContent([]string{"x"}, 3); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("QueryContent err = %v, want ErrNotIndexed", err)
	}
	if _, err := m.QueryDualCoding("x", 3); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("QueryDualCoding err = %v, want ErrNotIndexed", err)
	}
	if _, err := m.WeightedContentScores([]string{"x"}, []float64{1}); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("WeightedContentScores err = %v, want ErrNotIndexed", err)
	}
	if _, err := m.Refresh(); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("Refresh err = %v, want ErrNotIndexed", err)
	}
	e, err := NewSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryAnnotations("anything", 3); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("sharded QueryAnnotations err = %v, want ErrNotIndexed", err)
	}

	// Over the wire: the message travels verbatim, and the typed client
	// maps it back so errors.Is works remotely too.
	addr, stop, err := m.Serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	c, err := DialMirror(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, qerr := c.TextQuery("anything", 3, false)
	if qerr == nil {
		t.Fatal("remote query on unindexed store succeeded")
	}
	if !errors.Is(qerr, ErrNotIndexed) {
		t.Fatalf("remote err %v is not ErrNotIndexed", qerr)
	}
	if !strings.Contains(qerr.Error(), ErrNotIndexed.Error()) {
		t.Fatalf("remote err %q lost the verbatim message", qerr.Error())
	}
}
