package core

import (
	"os"
	"path/filepath"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/corpus"
)

// openStore opens (or reopens) a persistent Mirror on dir.
func openStore(t *testing.T, dir string) (*Mirror, RecoveryStats) {
	t.Helper()
	m, stats, err := OpenPersistent(PersistOptions{Dir: dir, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, walName))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestWALRecoversInsertsAfterCrash inserts without checkpointing,
// "crashes" (abandons the instance), and reopens: the WAL must restore
// every insert.
func TestWALRecoversInsertsAfterCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, stats := openStore(t, dir)
	if stats.BATs != 0 || stats.WALRecords != 0 {
		t.Fatalf("fresh store reported recovery: %+v", stats)
	}
	urls := []string{"http://img/1", "http://img/2", "http://img/3"}
	for i, u := range urls {
		if err := m.AddImage(u, "annotation "+u, nil); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	// Crash: no Checkpoint, no ClosePersistent.

	m2, stats2 := openStore(t, dir)
	defer m2.ClosePersistent()
	if stats2.WALRecords != 3 {
		t.Fatalf("replayed %d WAL records, want 3", stats2.WALRecords)
	}
	if got := m2.URLs(); len(got) != 3 || got[0] != urls[0] || got[2] != urls[2] {
		t.Fatalf("recovered URLs = %v", got)
	}
	src, ok := m2.DB.BAT(LibrarySet + "_source")
	if !ok || src.Len() != 3 {
		t.Fatalf("recovered source BAT missing or wrong length")
	}
	if v, _ := src.Find(bat.OID(1)); v != "http://img/2" {
		t.Fatalf("recovered source[1] = %v", v)
	}
	// The replayed insert must also be duplicate-guarded.
	if err := m2.AddImage(urls[0], "", nil); err == nil {
		t.Fatal("duplicate insert after recovery should fail")
	}
}

// TestCheckpointTruncatesWALAndIsIncremental verifies the WAL empties
// at a checkpoint, a second checkpoint writes nothing, and a small
// mutation rewrites only the touched BATs.
func TestCheckpointTruncatesWALAndIsIncremental(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	defer m.ClosePersistent()
	for _, u := range []string{"a", "b", "c", "d"} {
		if err := m.AddImage("http://img/"+u, "the annotation "+u, nil); err != nil {
			t.Fatal(err)
		}
	}
	if walSize(t, dir) == 0 {
		t.Fatal("inserts did not reach the WAL")
	}
	st, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Written == 0 {
		t.Fatal("initial checkpoint wrote nothing")
	}
	total := st.Written
	if walSize(t, dir) != 0 {
		t.Fatal("checkpoint did not truncate the WAL")
	}

	// Clean checkpoint: nothing to write.
	st, err = m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Written != 0 || st.Skipped != total {
		t.Fatalf("clean checkpoint wrote %d / skipped %d, want 0/%d", st.Written, st.Skipped, total)
	}

	// One insert dirties only the library-set columns.
	if err := m.AddImage("http://img/e", "fresh", nil); err != nil {
		t.Fatal(err)
	}
	st, err = m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Written == 0 || st.Written >= total {
		t.Fatalf("incremental checkpoint wrote %d of %d BATs; want 0 < written < total", st.Written, total)
	}

	// Restart from the checkpoint alone (WAL is empty).
	m2, stats := openStore(t, dir)
	defer m2.ClosePersistent()
	if stats.WALRecords != 0 {
		t.Fatalf("WAL should be empty after checkpoint, replayed %d", stats.WALRecords)
	}
	if m2.Size() != 5 {
		t.Fatalf("recovered size = %d, want 5", m2.Size())
	}
}

// TestTornWALTailIsTruncatedLoudly appends garbage (a torn write) after
// valid records: recovery must keep the valid prefix, report the tear,
// and leave a WAL that accepts new appends.
func TestTornWALTailIsTruncatedLoudly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	if err := m.AddImage("http://img/1", "one", nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddImage("http://img/2", "two", nil); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: half a frame of garbage at the tail.
	wf, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	m2, stats := openStore(t, dir)
	if !stats.TornTail {
		t.Fatal("torn WAL tail not reported")
	}
	if stats.WALRecords != 2 || m2.Size() != 2 {
		t.Fatalf("recovered %d records, size %d; want 2, 2", stats.WALRecords, m2.Size())
	}
	// The tear is gone: new inserts append after the valid prefix and a
	// further restart sees all three.
	if err := m2.AddImage("http://img/3", "three", nil); err != nil {
		t.Fatal(err)
	}
	m3, stats3 := openStore(t, dir)
	defer m3.ClosePersistent()
	if stats3.TornTail || stats3.WALRecords != 3 || m3.Size() != 3 {
		t.Fatalf("post-tear recovery: %+v size %d; want 3 records, size 3", stats3, m3.Size())
	}
}

// TestCrashBetweenCheckpointAndWALResetIsIdempotent simulates the
// narrow crash window after a checkpoint's manifest commit but before
// the WAL truncate: the stale WAL records are already in the
// checkpoint, and replay must skip them instead of bricking the store.
func TestCrashBetweenCheckpointAndWALResetIsIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	for _, u := range []string{"a", "b", "c"} {
		if err := m.AddImage("http://img/"+u, "annotation "+u, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Pool checkpoint commits, but the process "dies" before wal.reset.
	m.mu.Lock()
	extra, err := m.persistExtraLocked()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.pool.Checkpoint(m.DB.Snapshot(), extra); err != nil {
		t.Fatal(err)
	}
	m.mu.Unlock()
	if walSize(t, dir) == 0 {
		t.Fatal("precondition: WAL should still hold the stale records")
	}

	m2, stats := openStore(t, dir)
	defer m2.ClosePersistent()
	if stats.WALSkipped != 3 || stats.WALRecords != 0 {
		t.Fatalf("stale WAL replay: applied %d, skipped %d; want 0 applied, 3 skipped", stats.WALRecords, stats.WALSkipped)
	}
	if m2.Size() != 3 {
		t.Fatalf("size after idempotent recovery = %d, want 3 (no duplicates)", m2.Size())
	}
	src, _ := m2.DB.BAT(LibrarySet + "_source")
	if src.Len() != 3 {
		t.Fatalf("source BAT has %d rows, want 3", src.Len())
	}
}

// TestSaveDoesNotStealDirtyState takes a snapshot (Save) from a live
// persistent instance with unflushed changes: the snapshot must not
// clear the dirty bits the live pool still needs, so the next
// Checkpoint still writes them.
func TestSaveDoesNotStealDirtyState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	snap := filepath.Join(t.TempDir(), "snap")
	m, _ := openStore(t, dir)
	defer m.ClosePersistent()
	for _, u := range []string{"a", "b"} {
		if err := m.AddImage("http://img/"+u, "annotation "+u, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Save(snap); err != nil {
		t.Fatal(err)
	}
	st, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.Written == 0 {
		t.Fatal("Checkpoint after Save wrote nothing: the snapshot stole the dirty bits")
	}
	// And the primary store really holds the data.
	m2, _ := openStore(t, dir)
	defer m2.ClosePersistent()
	if m2.Size() != 2 {
		t.Fatalf("primary store lost data: size %d, want 2", m2.Size())
	}
}

// TestSaveDropsStaleWAL snapshots into a directory that a crashed
// persistent instance left a WAL in: the snapshot must not be haunted
// by stale records on a later OpenPersistent.
func TestSaveDropsStaleWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	if err := m.AddImage("http://img/old", "stale", nil); err != nil {
		t.Fatal(err)
	}
	// Crash with the WAL pending, then reuse the directory for a
	// snapshot of a different database.
	if walSize(t, dir) == 0 {
		t.Fatal("precondition: pending WAL expected")
	}
	other, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AddImage("http://img/new", "fresh", nil); err != nil {
		t.Fatal(err)
	}
	if err := other.Save(dir); err != nil {
		t.Fatal(err)
	}

	m2, stats := openStore(t, dir)
	defer m2.ClosePersistent()
	if stats.WALRecords != 0 || stats.WALSkipped != 0 {
		t.Fatalf("stale WAL replayed over the snapshot: %+v", stats)
	}
	if got := m2.URLs(); len(got) != 1 || got[0] != "http://img/new" {
		t.Fatalf("snapshot contents haunted by stale WAL: %v", got)
	}
}

// TestCorruptHeapFileFailsRecoveryLoudly flips bytes in a checkpointed
// heap file: OpenPersistent must refuse rather than serve silent
// partial state.
func TestCorruptHeapFileFailsRecoveryLoudly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	for _, u := range []string{"a", "b", "c"} {
		if err := m.AddImage("http://img/"+u, "annotation "+u, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.ClosePersistent()

	// Corrupt every byte-heap of the library source column we can find.
	bdir := filepath.Join(dir, "bats")
	des, err := os.ReadDir(bdir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, de := range des {
		name := de.Name()
		if len(name) > 0 && de.Type().IsRegular() {
			info, _ := de.Info()
			if info.Size() > 8 && filepath.Ext(name) == ".heap" {
				p := filepath.Join(bdir, name)
				data, _ := os.ReadFile(p)
				data[0] ^= 0xFF
				os.WriteFile(p, data, 0o644)
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Skip("no byte-heap files found to corrupt")
	}
	if _, _, err := OpenPersistent(PersistOptions{Dir: dir, Verify: true}); err == nil {
		t.Fatal("recovery from a corrupt heap file should fail loudly")
	}
}

// TestFeedbackReplayedAcrossRestart runs the full pipeline, checkpoints,
// applies relevance feedback, crashes, and reopens: the thesaurus must
// come back with the feedback applied (WAL), identical to the
// pre-crash state.
func TestFeedbackReplayedAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	m, _ := openStore(t, dir)
	items := corpus.Generate(corpus.Config{N: 16, W: 48, H: 48, Seed: 5, AnnotateRate: 0.8})
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 5
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.ClosePersistent()

	// Restart 1: thesaurus rebuilt from the checkpoint. Apply feedback.
	m1, _ := openStore(t, dir)
	text := corpus.CanonicalTerm(mostAnnotatedClass(items))
	sess, err := m1.NewSession(text)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := sess.Run(4)
	if err != nil || len(hits) == 0 {
		t.Fatalf("session run: %v (%d hits)", err, len(hits))
	}
	if err := sess.Feedback([]bat.OID{hits[0].OID}, nil); err != nil {
		t.Fatal(err)
	}
	wantAssoc := m1.Thes.Associate(AnalyzeQuery(text), 8)
	// Crash without checkpoint.

	// Restart 2: same checkpoint + WAL replay of the feedback.
	m2, stats := openStore(t, dir)
	defer m2.ClosePersistent()
	if stats.WALRecords == 0 {
		t.Fatal("feedback did not reach the WAL")
	}
	gotAssoc := m2.Thes.Associate(AnalyzeQuery(text), 8)
	if len(gotAssoc) != len(wantAssoc) {
		t.Fatalf("associations after replay: %d want %d", len(gotAssoc), len(wantAssoc))
	}
	for i := range wantAssoc {
		if gotAssoc[i].Concept != wantAssoc[i].Concept ||
			gotAssoc[i].Belief != wantAssoc[i].Belief {
			t.Fatalf("association %d after replay = %+v, want %+v", i, gotAssoc[i], wantAssoc[i])
		}
	}
}

// TestPersistentQueriesMatchSnapshot asserts a store reopened through
// the pool answers ranked queries identically to a Save/Load snapshot
// of the same database.
func TestPersistentQueriesMatchSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	snapDir := filepath.Join(t.TempDir(), "snap")
	m, _ := openStore(t, dir)
	items := corpus.Generate(corpus.Config{N: 16, W: 48, H: 48, Seed: 9, AnnotateRate: 0.8})
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 5
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(snapDir); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.ClosePersistent()

	mp, _ := openStore(t, dir)
	defer mp.ClosePersistent()
	ms, err := Load(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	text := corpus.CanonicalTerm(mostAnnotatedClass(items))
	hp, err := mp.QueryAnnotations(text, 8)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := ms.QueryAnnotations(text, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp) != len(hs) {
		t.Fatalf("pool hits %d, snapshot hits %d", len(hp), len(hs))
	}
	for i := range hp {
		if hp[i] != hs[i] {
			t.Fatalf("hit %d differs: pool %+v snapshot %+v", i, hp[i], hs[i])
		}
	}
}
