package core

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// ShardedEngine is the placement-aware face of the Mirror DBMS: the
// document collection is partitioned by URL hash across N member stores
// (each a full *Mirror with its own BAT buffer pool and WAL), inserts are
// routed to their shard, and queries scatter to every shard and gather
// through the shared bounded top-k selector. It implements the same
// Retriever surface as a single store, so the RPC service and the shells
// cannot tell the difference — that transparency rests on three
// invariants:
//
//   - Global identity. Every document carries a global OID (its position
//     in the engine-wide ingestion order), persisted shard-locally in the
//     store manifest and WAL. Hits are remapped local→global before
//     merging, so scores AND tie-breaks (ascending OID) are exactly those
//     of a single store that ingested the same sequence.
//
//   - Global statistics. Shard-local indexing would compute local df/N/
//     avgdl and local vocabularies, diverging from a single store. The
//     engine runs extraction and clustering once over the global order,
//     computes collection statistics once, and registers them as overrides
//     (ir.SetGlobalStats) plus a union dictionary (ir.EnsureDictTerms) on
//     every shard before Finalize. Beliefs then become pure per-document
//     annotations — comparable across shards by construction.
//
//   - Shared pruning threshold. Ranked (k > 0) queries hand every shard's
//     pruned top-k scan one bat.TopKThreshold, so a hot shard's k-th best
//     score prunes the cold shards' scans exactly as doc-range partitions
//     prune each other inside one scan.
//
// Together these yield the differential guarantee the tests pin: for any
// shard count, the merged result is BUN-for-BUN identical (ties included)
// to the single-store result.
// Topology describes the engine's serving topology (moash \topology).
func (e *ShardedEngine) Topology() string {
	return fmt.Sprintf("sharded engine (%d in-process shards)", len(e.shards))
}

type ShardedEngine struct {
	mu     sync.RWMutex
	shards []*Mirror // immutable slice after construction

	// global ingestion bookkeeping. order[g] is the URL of global OID g
	// ("" marks a gap left by a shard that lost WAL-tail inserts in a
	// crash); loc[g] locates the document's shard and local OID.
	order []string
	urls  map[string]struct{}
	loc   []shardLoc

	thes *thesaurus.Thesaurus // shared across shards (shard 0 is authority)

	persistent bool
	root       string // store root in persistent mode

	// Snapshot-isolated serving across shards: queries pin ONE engine
	// epoch — a consistent vector of per-shard epochs plus the frozen
	// global order — so a refresh that has published on shard A but not
	// yet on shard B can never produce a cross-shard torn read. buildMu
	// serialises engine-level index construction (full builds and
	// refreshes).
	epoch    atomic.Pointer[engineEpoch]
	epochSeq int64
	buildMu  sync.Mutex

	// cache is the optional epoch-keyed query result cache
	// (SetResultCache); nil disables caching. Keyed on the engine epoch
	// sequence number, so every engine-level publish invalidates it for
	// free. One cache serves the whole engine (results carry global OIDs);
	// internally it is striped shared-nothing.
	cache atomic.Pointer[resultCache]

	// thetaMemo memoises each completed pruned query's terminal k-th
	// score, keyed on the engine epoch sequence number, so a repeat
	// query opens every shard's scan with the shared threshold already
	// at terminal height (SetThetaMemo; on by default).
	thetaMemo atomic.Pointer[ThetaMemo]

	// Frozen content model and running global collection statistics (the
	// exact integer bookkeeping behind df/N/avgdl), maintained
	// incrementally at each refresh and rebuilt from shard state on open.
	codebook           *Codebook
	annStats, imgStats *ir.GlobalStats
	annTotal, imgTotal int // token totals behind the AvgDocLen ratios
}

// engineEpoch is one published engine-wide snapshot: the per-shard epochs
// that together cover exactly docs global positions of the frozen order.
type engineEpoch struct {
	seq    int64
	docs   int      // covered global positions (gaps included)
	live   int      // covered documents (crash gaps excluded) — the wire stamp
	order  []string // frozen prefix of the global ingestion order
	shards []*IndexEpoch
	thes   *thesaurus.Thesaurus
}

// urlOf resolves a global OID against the epoch's frozen order.
func (ee *engineEpoch) urlOf(oid bat.OID) string {
	if uint64(oid) >= uint64(len(ee.order)) {
		return ""
	}
	return ee.order[oid]
}

// fanOutEps runs f on every shard epoch concurrently, first error wins.
func fanOutEps(shards []*IndexEpoch, f func(s int, ep *IndexEpoch) error) error {
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, ep := range shards {
		wg.Add(1)
		go func(i int, ep *IndexEpoch) {
			defer wg.Done()
			errs[i] = f(i, ep)
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

type shardLoc struct {
	shard int
	local bat.OID
}

// NewSharded creates an empty in-memory engine with n shards.
func NewSharded(n int) (*ShardedEngine, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be >= 1, got %d", n)
	}
	e := &ShardedEngine{urls: map[string]struct{}{}}
	e.thetaMemo.Store(newThetaMemo(defaultThetaMemoEntries))
	for i := 0; i < n; i++ {
		m, err := New()
		if err != nil {
			return nil, err
		}
		m.shardIndex, m.shardCount = i, n
		e.shards = append(e.shards, m)
	}
	return e, nil
}

// shardFor routes a URL to its shard: FNV-64a of the URL modulo the shard
// count. The function is pure, so placement survives restarts without a
// routing table — the same URL always lands on the same shard.
func (e *ShardedEngine) shardFor(url string) int {
	return ShardOf(url, len(e.shards))
}

// ShardOf is the engine's routing function as a pure standalone: the
// shard an n-shard engine stores url on. Workload synthesis uses it to
// construct shard-skewed document distributions without an engine.
func ShardOf(url string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(url))
	return int(h.Sum64() % uint64(n))
}

// NumShards reports the shard count.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Shard exposes one member store (read-only use: shell introspection and
// tests). Mutations must go through the engine or global invariants break.
func (e *ShardedEngine) Shard(i int) *Mirror { return e.shards[i] }

// ShardInfo describes one shard for introspection (moash \shards).
type ShardInfo struct {
	Index int
	Docs  int
	BATs  int
	Dir   string // "" for in-memory engines
}

// ShardInfos reports the layout: per-shard document counts (the skew the
// hash routing produced), BAT counts, and store directories.
func (e *ShardedEngine) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardInfo{Index: i, Docs: sh.Size(), BATs: len(sh.DB.BATNames())}
		if e.persistent {
			out[i].Dir = filepath.Join(e.root, shardDirName(i))
		}
	}
	return out
}

// ---- ingestion ----

// AddImage routes one library item to its shard and records its global
// identity. The engine-wide duplicate check runs first so a URL cannot
// land twice even if shard-local state were lost.
func (e *ShardedEngine) AddImage(url, annotation string, img *media.Image) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.urls[url]; dup {
		return fmt.Errorf("core: image %q already in library", url)
	}
	s := e.shardFor(url)
	g := uint64(len(e.order))
	pre := e.shards[s].Size()
	err := e.shards[s].addImageShard(url, annotation, img, g)
	// A WAL-append failure from the shard means "ingested but not
	// WAL-logged" — the document IS in the shard (and owns global OID g),
	// so the engine must record it or the next insert would reuse g and
	// corrupt the global mapping. Judge by what actually happened (the
	// shard grew), not by the error alone.
	if e.shards[s].Size() > pre {
		e.order = append(e.order, url)
		e.urls[url] = struct{}{}
		e.loc = append(e.loc, shardLoc{shard: s, local: bat.OID(pre)})
	}
	return err
}

// AddRaster re-attaches footage to an already-ingested URL on its shard.
func (e *ShardedEngine) AddRaster(url string, img *media.Image) error {
	return e.shards[e.shardFor(url)].AddRaster(url, img)
}

// Raster returns the stored raster for a URL.
func (e *ShardedEngine) Raster(url string) (*media.Image, bool) {
	return e.shards[e.shardFor(url)].Raster(url)
}

// Size reports the number of library items across all shards.
func (e *ShardedEngine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.urls)
}

// URLs returns the item URLs in global ingestion order.
func (e *ShardedEngine) URLs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.urls))
	for _, u := range e.order {
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// Indexed reports whether an engine epoch is being served (the content
// index exists; documents pending a Refresh do not un-index the engine).
func (e *ShardedEngine) Indexed() bool { return e.epoch.Load() != nil }

// Current reports whether the serving engine epoch covers every ingested
// document.
func (e *ShardedEngine) Current() bool {
	ee := e.epoch.Load()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return ee != nil && ee.docs == len(e.order)
}

// Pending reports how many ingested documents the serving engine epoch
// does not cover yet (global positions, so crash gaps never count).
func (e *ShardedEngine) Pending() int {
	ee := e.epoch.Load()
	e.mu.RLock()
	defer e.mu.RUnlock()
	covered := 0
	if ee != nil {
		covered = ee.docs
	}
	n := 0
	for _, u := range e.order[covered:] {
		if u != "" {
			n++
		}
	}
	return n
}

// Segments reports the serving epoch's per-shard segment layouts.
func (e *ShardedEngine) Segments() []SegmentsInfo {
	ee := e.epoch.Load()
	if ee == nil {
		return nil
	}
	var out []SegmentsInfo
	for s, ep := range ee.shards {
		out = append(out, ep.segmentsOf(s)...)
	}
	return out
}

// Refresh incrementally indexes every document ingested since the last
// publish: extraction and frozen-codebook assignment run once globally
// (off the locks), the running collection statistics advance by exactly
// the delta (integer bookkeeping — beliefs stay identical to a one-shot
// build), every shard republishes under the refreshed statistics (a
// shard with no new documents still refinalizes: df/N/avgdl moved), and
// one new engine epoch swaps in atomically — queries never observe a
// state in which some shards have refreshed and others have not.
func (e *ShardedEngine) Refresh() (RefreshStats, error) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	return e.refreshWith(newLocalPipeline(e.rasterLookup()))
}

// refreshWith is Refresh against an arbitrary pipeline (tests inject
// deterministic extractors). Caller holds e.buildMu.
func (e *ShardedEngine) refreshWith(pipe segmentExtractor) (RefreshStats, error) {
	defer pipe.close()
	var st RefreshStats
	ee := e.epoch.Load()
	if ee == nil {
		return st, fmt.Errorf("core: Refresh: %w", ErrNotIndexed)
	}
	e.mu.RLock()
	coveredPos := ee.docs
	orderLen := len(e.order)
	shardCovered := make([]int, len(e.shards))
	for s, sh := range e.shards {
		shardCovered[s] = sh.covered()
	}
	// alreadyCovered skips documents a shard recovered beyond the engine
	// prefix (torn-tail sibling recovery): re-publishing would duplicate
	// them in the shard's internal set.
	alreadyCovered := func(g int) bool {
		l := e.loc[g]
		return int(l.local) < shardCovered[l.shard]
	}
	var pendingURLs []string
	for g := coveredPos; g < orderLen; g++ {
		if e.order[g] != "" && !alreadyCovered(g) {
			pendingURLs = append(pendingURLs, e.order[g])
		}
	}
	cb := e.codebook
	e.mu.RUnlock()

	if len(pendingURLs) == 0 {
		st.Docs, st.Epoch = ee.docs, ee.seq
		return st, nil
	}
	if cb == nil {
		return st, fmt.Errorf("core: Refresh needs the frozen feature codebook, which this store lacks " +
			"(built by a distributed pipeline or an older version); run BuildContentIndex once locally")
	}
	words, err := assignExtraction(pipe, cb, pendingURLs)
	if err != nil {
		return st, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	// Group the delta by shard (global order ⇒ ascending shard-local
	// OIDs) and advance the exact running statistics by it.
	perShardURLs := make([][]string, len(e.shards))
	gsAnn, annTotal := cloneStats(e.annStats, e.annTotal)
	gsImg, imgTotal := cloneStats(e.imgStats, e.imgTotal)
	var thDocsTotal int
	for g := coveredPos; g < orderLen; g++ {
		url := e.order[g]
		if url == "" || alreadyCovered(g) {
			continue
		}
		l := e.loc[g]
		perShardURLs[l.shard] = append(perShardURLs[l.shard], url)
		ann := e.shards[l.shard].annotationOf(l.local)
		annToks := ir.Analyze(ann)
		gsAnn.N++
		annTotal += len(annToks)
		tf, _ := ir.TermFrequencies(annToks)
		for t := range tf {
			gsAnn.DF[t]++
		}
		imgToks := dedupSorted(append([]string(nil), words[url]...))
		gsImg.N++
		imgTotal += len(imgToks)
		for _, t := range imgToks {
			gsImg.DF[t]++
		}
		if ann != "" {
			thDocsTotal++
		}
	}
	gsAnn.AvgDocLen, gsImg.AvgDocLen = 0, 0
	if gsAnn.N > 0 {
		gsAnn.AvgDocLen = float64(annTotal) / float64(gsAnn.N)
	}
	if gsImg.N > 0 {
		gsImg.AvgDocLen = float64(imgTotal) / float64(gsImg.N)
	}
	annVocab := sortedKeys(gsAnn.DF)
	imgVocab := sortedKeys(gsImg.DF)

	perShard := make([]RefreshStats, len(e.shards))
	err = e.fanOut(func(s int, sh *Mirror) error {
		ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", gsAnn)
		ir.SetGlobalStats(sh.DB, InternalSet+"_image", gsImg)
		var serr error
		perShard[s], serr = sh.publishShardDelta(perShardURLs[s], words, annVocab, imgVocab)
		return serr
	})
	for _, sh := range e.shards {
		ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", nil)
		ir.SetGlobalStats(sh.DB, InternalSet+"_image", nil)
	}
	if err != nil {
		// A partial failure may have published on some shards: their
		// documents are now covered (the next refresh's alreadyCovered
		// guard skips them), so the running statistics must be recounted
		// from actual shard state or those documents' df/N/token
		// contributions would be lost for every later refresh. The engine
		// epoch is NOT advanced — queries keep the last consistent vector —
		// and the next successful refresh covers everything.
		e.rebuildRunningStats()
		return st, err
	}
	e.annStats, e.annTotal = gsAnn, annTotal
	e.imgStats, e.imgTotal = gsImg, imgTotal
	e.publishEngineEpochLocked(orderLen)

	nee := e.epoch.Load()
	st.NewDocs, st.Docs, st.Epoch = len(pendingURLs), nee.docs, nee.seq
	for _, ps := range perShard {
		st.Merges += ps.Merges
		if ps.Segments > st.Segments {
			st.Segments = ps.Segments
		}
	}
	return st, nil
}

// publishShardDelta is the engine-driven shard half of a refresh: publish
// the shard's delta (possibly empty — statistics moved regardless) under
// the pre-registered global overrides. The shard thesaurus is the shared
// engine instance, so AddDocs lands in the right place.
func (m *Mirror) publishShardDelta(urls []string, words map[string][]string, annVocab, imgVocab []string) (RefreshStats, error) {
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.publishDeltaLocked(urls, words, annVocab, imgVocab)
}

// cloneStats deep-copies running statistics so a failed refresh never
// corrupts the engine's bookkeeping.
func cloneStats(gs *ir.GlobalStats, total int) (*ir.GlobalStats, int) {
	out := &ir.GlobalStats{N: gs.N, AvgDocLen: gs.AvgDocLen, DF: make(map[string]int, len(gs.DF))}
	for t, c := range gs.DF {
		out.DF[t] = c
	}
	return out, total
}

// publishEngineEpochLocked swaps in a new engine epoch covering docs
// global positions, pinning every shard's just-published epoch. Callers
// hold e.mu (write).
func (e *ShardedEngine) publishEngineEpochLocked(docs int) {
	e.epochSeq++
	shardEps := make([]*IndexEpoch, len(e.shards))
	for i, sh := range e.shards {
		shardEps[i] = sh.currentEpoch()
	}
	// The new sequence number invalidates every cached result and every
	// memoised threshold seed for free; sweeping just returns the stale
	// generations' bytes promptly.
	defer e.cache.Load().sweep(e.epochSeq)
	defer e.thetaMemo.Load().sweep(e.epochSeq)
	// Crash gaps (order[g] == "" after a WAL-truncating recovery) occupy
	// global positions but hold no document; the wire stamp counts only
	// live documents so it matches the ingest-order prefix length.
	live := 0
	for _, u := range e.order[:docs] {
		if u != "" {
			live++
		}
	}
	e.epoch.Store(&engineEpoch{
		seq:    e.epochSeq,
		docs:   docs,
		live:   live,
		order:  e.order[:docs:docs],
		shards: shardEps,
		thes:   e.thes,
	})
}

// ContentTerms returns the cluster words of a document by global OID.
// Crash gaps (order[oid] == "") resolve to nil, never to another
// document's terms.
func (e *ShardedEngine) ContentTerms(oid bat.OID) []string {
	e.mu.RLock()
	if uint64(oid) >= uint64(len(e.loc)) || e.order[oid] == "" {
		e.mu.RUnlock()
		return nil
	}
	l := e.loc[oid]
	e.mu.RUnlock()
	return e.shards[l.shard].ContentTerms(l.local)
}

// Thesaurus returns the shared association thesaurus.
func (e *ShardedEngine) Thesaurus() *thesaurus.Thesaurus {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.thes
}

// SchemaSource returns the DDL (identical on every shard).
func (e *ShardedEngine) SchemaSource() string { return e.shards[0].SchemaSource() }

// urlOf resolves a global OID through the ingestion order.
func (e *ShardedEngine) urlOf(oid bat.OID) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if uint64(oid) >= uint64(len(e.order)) {
		return ""
	}
	return e.order[oid]
}

func (e *ShardedEngine) requireIndex() error {
	if e.epoch.Load() == nil {
		return ErrNotIndexed
	}
	return nil
}

// ---- index build (global pipeline) ----

// BuildContentIndex runs the Section 5.1 pipeline ONCE over the global
// collection — clustering and collection statistics are global by nature —
// then distributes each shard's slice of the result. See the type comment
// for why a per-shard build would break cross-shard comparability.
func (e *ShardedEngine) BuildContentIndex(opts IndexOptions) error {
	return e.buildIndex(opts, newLocalPipeline(e.rasterLookup()))
}

// BuildContentIndexDistributed is BuildContentIndex against daemons
// discovered through the data dictionary.
func (e *ShardedEngine) BuildContentIndexDistributed(opts IndexOptions, dictAddr string) error {
	p, err := newRemotePipeline(e.rasterLookup(), dictAddr)
	if err != nil {
		return err
	}
	return e.buildIndex(opts, p)
}

// rasterLookup resolves rasters across shards (routing is pure, so no
// table is needed).
func (e *ShardedEngine) rasterLookup() func(url string) (*media.Image, bool) {
	return func(url string) (*media.Image, bool) {
		return e.shards[e.shardFor(url)].Raster(url)
	}
}

func (e *ShardedEngine) buildIndex(opts IndexOptions, pipe segmentExtractor) error {
	defer pipe.close()
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()

	// Dense global order for the pipeline (skip crash gaps).
	order := make([]string, 0, len(e.urls))
	for _, u := range e.order {
		if u != "" {
			order = append(order, u)
		}
	}
	imageWords, cb, err := runExtraction(pipe, opts, order)
	if err != nil {
		return err
	}

	// Global collection statistics and vocabulary for both CONTREPs, from
	// exactly the token streams the shards will insert.
	anns := e.annotationsLocked()
	annTokens := make([][]string, len(order))
	imgTerms := make([][]string, len(order))
	var thDocs []thesaurus.Doc
	for i, url := range order {
		ann := anns[url]
		annTokens[i] = ir.Analyze(ann)
		imgTerms[i] = dedupSorted(append([]string(nil), imageWords[url]...))
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: annTokens[i], Concepts: imgTerms[i]})
		}
	}
	gsAnn := ir.CollectionStats(annTokens)
	gsImg := ir.CollectionStats(imgTerms)
	annVocab := sortedKeys(gsAnn.DF)
	imgVocab := sortedKeys(gsImg.DF)

	// Per-shard populate, in parallel: register this shard's statistics
	// overrides, install its slice of the content words, union the global
	// vocabulary into its dictionaries, Finalize.
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *Mirror) {
			defer wg.Done()
			ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", gsAnn)
			ir.SetGlobalStats(sh.DB, InternalSet+"_image", gsImg)
			errs[i] = sh.populateShardIndex(imageWords, annVocab, imgVocab)
		}(i, sh)
	}
	wg.Wait()
	// The overrides have served their purpose once Finalize persisted the
	// derived columns; clear them (also on failure) so the package-global
	// registry does not pin shard databases for the process lifetime.
	for _, sh := range e.shards {
		ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", nil)
		ir.SetGlobalStats(sh.DB, InternalSet+"_image", nil)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: indexing shard %d: %w", i, err)
		}
	}

	// One global thesaurus, shared by reference: every shard checkpoints
	// the same state, and feedback reinforcement (logged on shard 0)
	// mutates the one object all query paths read.
	e.thes = thesaurus.Build(thDocs)
	for _, sh := range e.shards {
		sh.setThesaurus(e.thes)
	}

	// Freeze the content model and the exact statistics bookkeeping the
	// incremental refresh path advances; every shard persists the
	// codebook so a reopened store can keep refreshing.
	e.codebook = cb
	e.annStats, e.annTotal = gsAnn, tokenTotal(annTokens)
	e.imgStats, e.imgTotal = gsImg, tokenTotal(imgTerms)
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.codebook = cb
		sh.mu.Unlock()
	}

	// Publish: every shard snapshots its just-built index, then the
	// engine pins the vector as epoch 1 (or the next in sequence).
	for _, sh := range e.shards {
		sh.mu.Lock()
		err := sh.publishEpochLocked()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	e.publishEngineEpochLocked(len(e.order))
	return nil
}

// tokenTotal sums per-document token counts (the integer numerator of
// AvgDocLen).
func tokenTotal(docs [][]string) int {
	total := 0
	for _, d := range docs {
		total += len(d)
	}
	return total
}

// annotationsLocked reads every document's annotation from the shard
// library BATs (annotations are stored data, not engine state). Callers
// hold e.mu.
func (e *ShardedEngine) annotationsLocked() map[string]string {
	out := make(map[string]string, len(e.urls))
	for _, sh := range e.shards {
		annB, ok := sh.DB.BAT(LibrarySet + "_annotation")
		if !ok {
			continue
		}
		for i, u := range sh.order {
			if v, ok := annB.Find(bat.OID(i)); ok {
				s, _ := v.(string)
				out[u] = s
			}
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- scatter-gather queries ----

// hitWorse orders hits under the ranked-retrieval total order: score
// descending, global OID ascending on ties — the same order a single
// store's ranking uses, which is what makes the merge a pure top-k union.
func hitWorse(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.OID > b.OID
}

// fanOut runs f on every shard concurrently and returns the first error.
func (e *ShardedEngine) fanOut(f func(s int, sh *Mirror) error) error {
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *Mirror) {
			defer wg.Done()
			errs[i] = f(i, sh)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

// gatherHits fans a ranking query out to every shard epoch of one pinned
// engine epoch and merges the shard-local rankings into the global one.
// k > 0 shares one pruning threshold across all shards' scans and merges
// through the bounded selector; k <= 0 returns the full ranking.
func (e *ShardedEngine) gatherHits(src string, params map[string]moa.Param, k int) ([]Hit, error) {
	ee := e.epoch.Load()
	if ee == nil {
		return nil, ErrNotIndexed
	}
	return ee.gatherHits(src, params, k)
}

func (ee *engineEpoch) gatherHits(src string, params map[string]moa.Param, k int) ([]Hit, error) {
	return ee.gatherHitsTheta(src, params, k, nil)
}

// gatherHitsTheta is gatherHits with the shared pruning threshold
// supplied by the caller — a θ-memo seed pre-raises it to the previous
// run's terminal height, and every shard scan starts there instead of
// climbing from -Inf independently.
func (ee *engineEpoch) gatherHitsTheta(src string, params map[string]moa.Param, k int, theta *bat.TopKThreshold) ([]Hit, error) {
	if k > 0 && theta == nil {
		theta = bat.NewTopKThreshold()
	}
	perShard := make([][]Hit, len(ee.shards))
	err := fanOutEps(ee.shards, func(s int, ep *IndexEpoch) error {
		res, err := ep.queryTopK(src, params, k, theta)
		if err != nil {
			return err
		}
		hits := make([]Hit, 0, len(res.Rows))
		for _, row := range res.Rows {
			if uint64(row.OID) >= uint64(len(ep.globals)) {
				return fmt.Errorf("local OID %d beyond %d mapped documents", row.OID, len(ep.globals))
			}
			score, _ := row.Value.(float64)
			g := bat.OID(ep.globals[row.OID])
			hits = append(hits, Hit{OID: g, URL: ee.urlOf(g), Score: score})
		}
		// An exhaustive fallback returns unranked rows; rank them locally
		// so the merge below sees each shard's best first either way.
		if !res.Ranked && k > 0 && len(hits) > k {
			hits = topKHits(hits, k)
		}
		perShard[s] = hits
		return nil
	})
	if err != nil {
		return nil, err
	}
	if k > 0 {
		merged := bat.NewBoundedTopK(k, hitWorse)
		for _, hits := range perShard {
			for _, h := range hits {
				merged.Offer(h)
			}
		}
		return merged.Ranked(), nil
	}
	var all []Hit
	for _, hits := range perShard {
		all = append(all, hits...)
	}
	sort.Slice(all, func(i, j int) bool { return hitWorse(all[j], all[i]) })
	return all, nil
}

// QueryAnnotations / QueryContent / ExpandQuery make a pinned engineEpoch
// a dualCodingSite (combined evidence reads one consistent snapshot).
func (ee *engineEpoch) QueryAnnotations(text string, k int) ([]Hit, error) {
	return ee.gatherHits(annotationQuery, ir.QueryParams(ir.Analyze(text)), k)
}

func (ee *engineEpoch) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	return ee.gatherHits(contentQuery, ir.QueryParams(clusterWords), k)
}

func (ee *engineEpoch) ExpandQuery(text string, topK int) []string {
	return expandConcepts(ee.thes, text, topK)
}

// topKHits cuts hits to the k best under hitWorse.
func topKHits(hits []Hit, k int) []Hit {
	h := bat.NewBoundedTopK(k, hitWorse)
	for _, x := range hits {
		h.Offer(x)
	}
	return h.Ranked()
}

// QueryAnnotations ranks the whole collection against a free-text query —
// scatter, then gather; see Mirror.QueryAnnotations for semantics.
func (e *ShardedEngine) QueryAnnotations(text string, k int) ([]Hit, error) {
	hits, _, err := e.QueryAnnotationsStamped(text, k)
	return hits, err
}

// QueryAnnotationsStamped is QueryAnnotations plus the stamp of the
// engine epoch the scatter-gather ran against.
func (e *ShardedEngine) QueryAnnotationsStamped(text string, k int) ([]Hit, EpochStamp, error) {
	ee := e.epoch.Load()
	if ee == nil {
		return nil, EpochStamp{}, ErrNotIndexed
	}
	c := e.cache.Load()
	if hits, ok := c.get(ee.seq, cacheAnnotations, k, text, nil); ok {
		return hits, ee.stamp(), nil
	}
	tm := e.thetaMemo.Load()
	theta := seededTheta(tm, ee.seq, cacheAnnotations, k, text, nil)
	hits, err := ee.gatherHitsTheta(annotationQuery, ir.QueryParams(ir.Analyze(text)), k, theta)
	if err == nil {
		c.put(ee.seq, cacheAnnotations, k, text, nil, hits)
		memoTheta(tm, ee.seq, cacheAnnotations, k, text, nil, hits)
	}
	return hits, ee.stamp(), err
}

// QueryContent ranks by image content given cluster words.
func (e *ShardedEngine) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	ee := e.epoch.Load()
	if ee == nil {
		return nil, ErrNotIndexed
	}
	c := e.cache.Load()
	if hits, ok := c.get(ee.seq, cacheContent, k, "", clusterWords); ok {
		return hits, nil
	}
	tm := e.thetaMemo.Load()
	theta := seededTheta(tm, ee.seq, cacheContent, k, "", clusterWords)
	hits, err := ee.gatherHitsTheta(contentQuery, ir.QueryParams(clusterWords), k, theta)
	if err == nil {
		c.put(ee.seq, cacheContent, k, "", clusterWords, hits)
		memoTheta(tm, ee.seq, cacheContent, k, "", clusterWords, hits)
	}
	return hits, err
}

// QueryDualCoding combines annotation and content evidence (#sum); the
// combination runs on global OIDs, so it is shard-oblivious, and both
// evidence sources read one pinned engine epoch.
func (e *ShardedEngine) QueryDualCoding(text string, k int) ([]Hit, error) {
	hits, _, err := e.QueryDualCodingStamped(text, k)
	return hits, err
}

// QueryDualCodingStamped is QueryDualCoding plus the stamp of the pinned
// engine epoch both evidence sources read.
func (e *ShardedEngine) QueryDualCodingStamped(text string, k int) ([]Hit, EpochStamp, error) {
	ee := e.epoch.Load()
	if ee == nil {
		return nil, EpochStamp{}, ErrNotIndexed
	}
	c := e.cache.Load()
	if hits, ok := c.get(ee.seq, cacheDual, k, text, nil); ok {
		return hits, ee.stamp(), nil
	}
	hits, err := queryDualCoding(ee, text, k)
	if err == nil {
		c.put(ee.seq, cacheDual, k, text, nil, hits)
	}
	return hits, ee.stamp(), err
}

// SetResultCache installs (or, with maxBytes <= 0, removes) an
// epoch-keyed query result cache bounded to roughly maxBytes, shared by
// all shards (the gathered results it stores carry global OIDs).
func (e *ShardedEngine) SetResultCache(maxBytes int64) {
	e.cache.Store(newResultCache(maxBytes))
}

// ResultCacheStats reports the result cache's effectiveness counters
// (zero when caching is disabled).
func (e *ShardedEngine) ResultCacheStats() CacheStats {
	return e.cache.Load().stats()
}

// SetThetaMemo installs (or, with maxEntries <= 0, removes) the
// epoch-keyed threshold memo bounded to roughly maxEntries; seeds are
// pruning-only, so toggling it is always safe.
func (e *ShardedEngine) SetThetaMemo(maxEntries int) {
	e.thetaMemo.Store(newThetaMemo(maxEntries))
}

// ThetaMemoStats reports the threshold memo's effectiveness counters
// (zero when the memo is disabled).
func (e *ShardedEngine) ThetaMemoStats() ThetaMemoStats {
	return e.thetaMemo.Load().stats()
}

// SetStoreCodec selects the postings segment layout every shard uses for
// newly derived, merged or rewritten segments ("block"/"raw"; "" = block).
func (e *ShardedEngine) SetStoreCodec(name string) error {
	for _, sh := range e.shards {
		if err := sh.SetStoreCodec(name); err != nil {
			return err
		}
	}
	return nil
}

// PostingsStats reports every shard's postings footprint in the serving
// engine epoch, plus the process-wide block-scan counters.
func (e *ShardedEngine) PostingsStats() PostingsStats {
	var st PostingsStats
	if ee := e.epoch.Load(); ee != nil {
		for s, ep := range ee.shards {
			st.Stores = append(st.Stores, ep.postingsOf(s)...)
		}
	}
	st.BlocksDecoded, st.BlocksSkipped = bat.BlockScanStats()
	return st
}

// ExpandQuery maps free text to associated content clusters via the
// shared thesaurus.
func (e *ShardedEngine) ExpandQuery(text string, topK int) []string {
	return expandConcepts(e.Thesaurus(), text, topK)
}

// WeightedContentScores scatters the weighted-sum scoring across one
// pinned engine epoch and gathers the per-shard score maps under global
// OIDs (shards are disjoint, so the merge is a plain union).
func (e *ShardedEngine) WeightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	ee := e.epoch.Load()
	if ee == nil {
		return nil, ErrNotIndexed
	}
	perShard := make([]ir.Scores, len(ee.shards))
	err := fanOutEps(ee.shards, func(s int, ep *IndexEpoch) error {
		scores, err := ep.weightedContentScores(terms, weights)
		if err != nil {
			ir.ReleaseScores(scores) // nil on error; release is nil-safe
			return err
		}
		// The shard-local map is pooled scratch: remap to global OIDs into
		// a plain map (perShard escapes the borrow scope) and release.
		out := make(ir.Scores, len(scores))
		for local, score := range scores {
			if local >= uint64(len(ep.globals)) {
				ir.ReleaseScores(scores)
				return fmt.Errorf("local OID %d beyond %d mapped documents", local, len(ep.globals))
			}
			out[ep.globals[local]] = score
		}
		ir.ReleaseScores(scores)
		perShard[s] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range perShard {
		total += len(s)
	}
	merged := make(ir.Scores, total)
	for _, s := range perShard {
		for g, score := range s {
			merged[g] = score
		}
	}
	return merged, nil
}

// NewSession starts a relevance-feedback session over the sharded
// collection; judgments arrive as global OIDs (what hits carry).
func (e *ShardedEngine) NewSession(text string) (*Session, error) { return newSession(e, text) }

// reinforceLogged routes feedback reinforcement to shard 0 — the durable
// authority for the shared thesaurus (its WAL carries the feedback
// records; every shard checkpoints the same shared state).
func (e *ShardedEngine) reinforceLogged(words, concepts []string, relevant bool) error {
	return e.shards[0].reinforceLogged(words, concepts, relevant)
}

// Query runs a raw Moa query across all shards (see QueryTopK).
func (e *ShardedEngine) Query(src string, queryTerms []string) (*moa.Result, error) {
	return e.QueryTopK(src, queryTerms, 0)
}

// QueryTopK runs a raw Moa query on every shard and merges set-typed
// results under global OIDs: k > 0 merges the shard rankings through the
// bounded selector (rows come back ranked and cut — on a sharded store
// the cut always happens engine-side, even for plans served exhaustively
// on the shards); k <= 0 concatenates in ascending global OID order.
// Scalar queries are refused: aggregating arbitrary scalars across shards
// is query-specific, and silently summing or averaging would lie.
func (e *ShardedEngine) QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error) {
	res, _, err := e.QueryTopKStamped(src, queryTerms, k)
	return res, err
}

// QueryTopKStamped is QueryTopK plus the stamp of the engine epoch every
// shard evaluated against; the live-database fallback (no epoch published)
// returns the zero stamp.
func (e *ShardedEngine) QueryTopKStamped(src string, queryTerms []string, k int) (*moa.Result, EpochStamp, error) {
	var params map[string]moa.Param
	if queryTerms != nil {
		params = ir.QueryParams(queryTerms)
	}
	var theta *bat.TopKThreshold
	if k > 0 {
		theta = bat.NewTopKThreshold()
	}
	// Indexed engines evaluate against the pinned engine epoch (snapshot-
	// isolated). A pre-index engine falls back to the live shard
	// databases — moash's pre-pipeline browsing — which is safe only
	// without concurrent ingest.
	shardEval := func(s int, run func(*moa.Engine) (*moa.Result, error)) (*moa.Result, error) {
		eng := &moa.Engine{DB: e.shards[s].Eng.DB, Opts: e.shards[s].Eng.Opts}
		if k > 0 {
			eng.Opts.TopK = k
			eng.Opts.TopKTheta = theta
		}
		return run(eng)
	}
	ee := e.epoch.Load()
	var stamp EpochStamp
	if ee != nil {
		stamp = ee.stamp()
	}
	globalsOf := func(s int) []uint64 { return e.shards[s].globalOIDsSnapshot() }
	evalShard := func(s int) (*moa.Result, error) {
		return shardEval(s, func(eng *moa.Engine) (*moa.Result, error) { return eng.Query(src, params) })
	}
	if ee != nil {
		globalsOf = func(s int) []uint64 { return ee.shards[s].globals }
		evalShard = func(s int) (*moa.Result, error) {
			return ee.shards[s].queryTopK(src, params, k, theta)
		}
	}
	results := make([]*moa.Result, len(e.shards))
	err := e.fanOut(func(s int, _ *Mirror) error {
		res, err := evalShard(s)
		if err != nil {
			return err
		}
		if res.Rows == nil {
			return fmt.Errorf("scalar Moa queries cannot be merged across shards (run against one shard)")
		}
		globals := globalsOf(s)
		for i := range res.Rows {
			local := res.Rows[i].OID
			if uint64(local) >= uint64(len(globals)) {
				return fmt.Errorf("local OID %d beyond %d mapped documents", local, len(globals))
			}
			res.Rows[i].OID = bat.OID(globals[local])
		}
		results[s] = res
		return nil
	})
	if err != nil {
		return nil, stamp, err
	}
	out := &moa.Result{T: results[0].T}
	if k > 0 {
		merged := bat.NewBoundedTopK(k, moa.RowWorse)
		for _, res := range results {
			for _, row := range res.Rows {
				merged.Offer(row)
			}
		}
		out.Rows = merged.Ranked()
		out.Ranked = true
		return out, stamp, nil
	}
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].OID < out.Rows[j].OID })
	return out, stamp, nil
}

// ---- persistence ----

// shardDirName is the store subdirectory of one shard.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// ShardedPersistOptions configures OpenShardedPersistent.
type ShardedPersistOptions struct {
	Dir    string // store root; shards live in Dir/shard-NNN
	Shards int    // shard count; 0 = reopen with the stored layout
	// Per-shard pool/WAL knobs, identical to PersistOptions.
	WALSync    bool
	Verify     bool
	NoMmap     bool
	Budget     int64  // total byte budget, split evenly across shards
	StoreCodec string // postings segment layout ("block"/"raw"; empty = block)
}

// ShardRecoveryStats aggregates per-shard recovery.
type ShardRecoveryStats struct {
	Shards     int
	BATs       int
	WALRecords int
	WALSkipped int
	TornTails  []int // shard indexes whose WAL tail was truncated
}

// OpenShardedPersistent opens (or initialises) a sharded store: the root
// holds one BAT-buffer-pool directory per shard, each with its own
// manifest, heap files and WAL. Shards recover in parallel — checkpoint
// load plus WAL replay each — and the engine rebuilds the global mapping
// from the shard-local identities. The layout is a stored property of the
// shard manifests: opts.Shards must match an existing store (0 adopts the
// stored count), and a directory holding a standalone store is refused —
// resharding in place is not supported.
func OpenShardedPersistent(opts ShardedPersistOptions) (*ShardedEngine, ShardRecoveryStats, error) {
	var stats ShardRecoveryStats
	if opts.Dir == "" {
		return nil, stats, fmt.Errorf("core: sharded store needs a directory")
	}
	if storage.IsStore(opts.Dir) {
		return nil, stats, fmt.Errorf("core: %s holds a standalone store; resharding in place is not supported", opts.Dir)
	}
	stored := 0
	for {
		if _, err := os.Stat(filepath.Join(opts.Dir, shardDirName(stored))); err != nil {
			break
		}
		stored++
	}
	n := opts.Shards
	switch {
	case stored == 0 && n < 1:
		return nil, stats, fmt.Errorf("core: fresh sharded store needs an explicit shard count")
	case stored == 0:
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, stats, err
		}
	case n == 0:
		n = stored // reopen with the layout the store was built with
	case n != stored:
		return nil, stats, fmt.Errorf("core: %s was built with %d shards, not the requested %d", opts.Dir, stored, n)
	}

	e := &ShardedEngine{
		shards:     make([]*Mirror, n),
		urls:       map[string]struct{}{},
		persistent: true,
		root:       opts.Dir,
	}
	e.thetaMemo.Store(newThetaMemo(defaultThetaMemoEntries))
	perStats := make([]RecoveryStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.shards[i], perStats[i], errs[i] = OpenPersistent(PersistOptions{
				Dir:        filepath.Join(opts.Dir, shardDirName(i)),
				WALSync:    opts.WALSync,
				Verify:     opts.Verify,
				NoMmap:     opts.NoMmap,
				Budget:     opts.Budget / int64(n),
				StoreCodec: opts.StoreCodec,
				ShardIndex: i,
				ShardCount: n,
			})
		}(i)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	if firstErr != nil {
		for _, sh := range e.shards {
			if sh != nil {
				sh.ClosePersistent()
			}
		}
		return nil, stats, firstErr
	}

	stats.Shards = n
	for i, ps := range perStats {
		stats.BATs += ps.BATs
		stats.WALRecords += ps.WALRecords
		stats.WALSkipped += ps.WALSkipped
		if ps.TornTail {
			stats.TornTails = append(stats.TornTails, i)
		}
	}

	if err := e.rebuildGlobalMapping(); err != nil {
		for _, sh := range e.shards {
			sh.ClosePersistent()
		}
		return nil, stats, err
	}

	// Shard 0 is the thesaurus authority: it replayed the feedback WAL.
	// Install its instance everywhere so all query paths share one object
	// (and every shard checkpoints the authoritative state from now on).
	e.thes = e.shards[0].Thesaurus()
	if e.thes != nil {
		for _, sh := range e.shards[1:] {
			sh.setThesaurus(e.thes)
		}
	}

	// Content model + the exact statistics bookkeeping future refreshes
	// advance incrementally (rebuilt from the covered documents, so it
	// reflects replayed publishes too).
	for _, sh := range e.shards {
		if sh.codebook != nil {
			e.codebook = sh.codebook
			break
		}
	}
	e.rebuildRunningStats()

	// Finish deferred deltas: shards replay WAL publish records
	// structurally (inserts only) because beliefs need GLOBAL statistics;
	// now that every shard is open the engine re-registers them, unions
	// the grown vocabulary everywhere, and refinalizes ALL shards (a
	// replayed delta moves df/N/avgdl for every shard, exactly as the
	// live refresh did).
	deferred := false
	allIndexed := true
	for _, sh := range e.shards {
		if sh.deferredDelta {
			deferred = true
		}
		if !sh.Indexed() {
			allIndexed = false
		}
	}
	if deferred && allIndexed {
		var th []thesaurus.Doc
		for _, sh := range e.shards {
			th = append(th, sh.deferredThes...)
			sh.deferredThes = nil
		}
		if len(th) > 0 {
			if e.thes == nil {
				e.thes = thesaurus.Build(th)
				for _, sh := range e.shards {
					sh.setThesaurus(e.thes)
				}
			} else {
				e.thes.AddDocs(th)
			}
		}
		annVocab := sortedKeys(e.annStats.DF)
		imgVocab := sortedKeys(e.imgStats.DF)
		err := e.fanOut(func(s int, sh *Mirror) error {
			ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", e.annStats)
			ir.SetGlobalStats(sh.DB, InternalSet+"_image", e.imgStats)
			if err := ir.EnsureDictTerms(sh.DB, InternalSet+"_annotation", annVocab); err != nil {
				return err
			}
			if err := ir.EnsureDictTerms(sh.DB, InternalSet+"_image", imgVocab); err != nil {
				return err
			}
			return sh.finishDeferredDelta()
		})
		for _, sh := range e.shards {
			ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", nil)
			ir.SetGlobalStats(sh.DB, InternalSet+"_image", nil)
		}
		if err != nil {
			for _, sh := range e.shards {
				sh.ClosePersistent()
			}
			return nil, stats, err
		}
	}
	if allIndexed {
		for _, sh := range e.shards {
			if sh.epochSeq > e.epochSeq {
				e.epochSeq = sh.epochSeq
			}
		}
		e.mu.Lock()
		e.publishEngineEpochLocked(e.coveredPrefixLocked())
		e.mu.Unlock()
	}
	return e, stats, nil
}

// coveredPrefixLocked computes the longest prefix of the global order in
// which every (non-gap) position's document is covered by its shard's
// internal set — what the recovered engine epoch may claim. Documents a
// shard recovered beyond this prefix (possible only after a torn-tail
// WAL loss on a sibling shard) stay served shard-exactly and are skipped
// by later refreshes. Callers hold e.mu.
func (e *ShardedEngine) coveredPrefixLocked() int {
	covered := make([]int, len(e.shards))
	for s, sh := range e.shards {
		covered[s] = sh.covered()
	}
	docs := 0
	for g := 0; g < len(e.order); g++ {
		if e.order[g] != "" {
			l := e.loc[g]
			if int(l.local) >= covered[l.shard] {
				break
			}
		}
		docs = g + 1
	}
	return docs
}

// rebuildRunningStats recomputes the exact global-statistics bookkeeping
// from every shard's covered documents (annotations are stored data, the
// content words live in contentTerms).
func (e *ShardedEngine) rebuildRunningStats() {
	var annDocs, imgDocs [][]string
	for _, sh := range e.shards {
		sh.mu.RLock()
		covered := sh.coveredLocked()
		annB, _ := sh.DB.BAT(LibrarySet + "_annotation")
		for i := 0; i < covered; i++ {
			var ann string
			if annB != nil {
				if v, ok := annB.Find(bat.OID(i)); ok {
					ann, _ = v.(string)
				}
			}
			annDocs = append(annDocs, ir.Analyze(ann))
			imgDocs = append(imgDocs, sh.contentTerms[bat.OID(i)])
		}
		sh.mu.RUnlock()
	}
	e.annStats, e.annTotal = ir.CollectionStats(annDocs), tokenTotal(annDocs)
	e.imgStats, e.imgTotal = ir.CollectionStats(imgDocs), tokenTotal(imgDocs)
}

// rebuildGlobalMapping reconstructs order/loc from the shard-local
// (local OID → global OID) maps the shards recovered. A gap — a global
// OID no shard claims — means a shard lost WAL-tail inserts in a crash
// (possible without -wal-sync); the slot is kept empty rather than
// renumbering, so surviving documents keep their identity.
func (e *ShardedEngine) rebuildGlobalMapping() error {
	maxG := -1
	for _, sh := range e.shards {
		for _, g := range sh.globalOIDs {
			if int(g) > maxG {
				maxG = int(g)
			}
		}
	}
	e.order = make([]string, maxG+1)
	e.loc = make([]shardLoc, maxG+1)
	for s, sh := range e.shards {
		if len(sh.globalOIDs) != len(sh.order) {
			return fmt.Errorf("core: shard %d maps %d of %d documents", s, len(sh.globalOIDs), len(sh.order))
		}
		for i, g := range sh.globalOIDs {
			url := sh.order[i]
			if e.order[g] != "" {
				return fmt.Errorf("core: global OID %d claimed by both %q and %q", g, e.order[g], url)
			}
			e.order[g] = url
			e.loc[g] = shardLoc{shard: s, local: bat.OID(i)}
			e.urls[url] = struct{}{}
		}
	}
	return nil
}

// Persistent reports whether the engine was opened with
// OpenShardedPersistent.
func (e *ShardedEngine) Persistent() bool { return e.persistent }

// Checkpoint flushes every shard in parallel (each shard's manifest swap
// is its own atomic commit point; there is no cross-shard transaction —
// every shard is individually consistent, and the global mapping is
// shard-local data, so a crash between shard checkpoints loses at most
// unsynced WAL tails, never consistency). Stats are summed.
func (e *ShardedEngine) Checkpoint() (storage.CheckpointStats, error) {
	var total storage.CheckpointStats
	if !e.persistent {
		return total, fmt.Errorf("core: Checkpoint on a non-persistent engine")
	}
	var mu sync.Mutex
	err := e.fanOut(func(s int, sh *Mirror) error {
		st, err := sh.Checkpoint()
		if err != nil {
			return err
		}
		mu.Lock()
		total.Written += st.Written
		total.Skipped += st.Skipped
		total.Bytes += st.Bytes
		mu.Unlock()
		return nil
	})
	return total, err
}

// ClosePersistent releases every shard's WAL and pool.
func (e *ShardedEngine) ClosePersistent() error {
	var firstErr error
	for _, sh := range e.shards {
		if err := sh.ClosePersistent(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Serve runs the standard RPC server over the sharded engine; clients see
// the same protocol a single store serves.
func (e *ShardedEngine) Serve(addr, dictAddr string) (string, func(), error) {
	return Serve(e, addr, dictAddr)
}
