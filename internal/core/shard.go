package core

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// ShardedEngine is the placement-aware face of the Mirror DBMS: the
// document collection is partitioned by URL hash across N member stores
// (each a full *Mirror with its own BAT buffer pool and WAL), inserts are
// routed to their shard, and queries scatter to every shard and gather
// through the shared bounded top-k selector. It implements the same
// Retriever surface as a single store, so the RPC service and the shells
// cannot tell the difference — that transparency rests on three
// invariants:
//
//   - Global identity. Every document carries a global OID (its position
//     in the engine-wide ingestion order), persisted shard-locally in the
//     store manifest and WAL. Hits are remapped local→global before
//     merging, so scores AND tie-breaks (ascending OID) are exactly those
//     of a single store that ingested the same sequence.
//
//   - Global statistics. Shard-local indexing would compute local df/N/
//     avgdl and local vocabularies, diverging from a single store. The
//     engine runs extraction and clustering once over the global order,
//     computes collection statistics once, and registers them as overrides
//     (ir.SetGlobalStats) plus a union dictionary (ir.EnsureDictTerms) on
//     every shard before Finalize. Beliefs then become pure per-document
//     annotations — comparable across shards by construction.
//
//   - Shared pruning threshold. Ranked (k > 0) queries hand every shard's
//     pruned top-k scan one bat.TopKThreshold, so a hot shard's k-th best
//     score prunes the cold shards' scans exactly as doc-range partitions
//     prune each other inside one scan.
//
// Together these yield the differential guarantee the tests pin: for any
// shard count, the merged result is BUN-for-BUN identical (ties included)
// to the single-store result.
type ShardedEngine struct {
	mu     sync.RWMutex
	shards []*Mirror // immutable slice after construction

	// global ingestion bookkeeping. order[g] is the URL of global OID g
	// ("" marks a gap left by a shard that lost WAL-tail inserts in a
	// crash); loc[g] locates the document's shard and local OID.
	order []string
	urls  map[string]struct{}
	loc   []shardLoc

	thes *thesaurus.Thesaurus // shared across shards (shard 0 is authority)

	persistent bool
	root       string // store root in persistent mode
}

type shardLoc struct {
	shard int
	local bat.OID
}

// NewSharded creates an empty in-memory engine with n shards.
func NewSharded(n int) (*ShardedEngine, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be >= 1, got %d", n)
	}
	e := &ShardedEngine{urls: map[string]struct{}{}}
	for i := 0; i < n; i++ {
		m, err := New()
		if err != nil {
			return nil, err
		}
		m.shardIndex, m.shardCount = i, n
		e.shards = append(e.shards, m)
	}
	return e, nil
}

// shardFor routes a URL to its shard: FNV-64a of the URL modulo the shard
// count. The function is pure, so placement survives restarts without a
// routing table — the same URL always lands on the same shard.
func (e *ShardedEngine) shardFor(url string) int {
	h := fnv.New64a()
	h.Write([]byte(url))
	return int(h.Sum64() % uint64(len(e.shards)))
}

// NumShards reports the shard count.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Shard exposes one member store (read-only use: shell introspection and
// tests). Mutations must go through the engine or global invariants break.
func (e *ShardedEngine) Shard(i int) *Mirror { return e.shards[i] }

// ShardInfo describes one shard for introspection (moash \shards).
type ShardInfo struct {
	Index int
	Docs  int
	BATs  int
	Dir   string // "" for in-memory engines
}

// ShardInfos reports the layout: per-shard document counts (the skew the
// hash routing produced), BAT counts, and store directories.
func (e *ShardedEngine) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardInfo{Index: i, Docs: sh.Size(), BATs: len(sh.DB.BATNames())}
		if e.persistent {
			out[i].Dir = filepath.Join(e.root, shardDirName(i))
		}
	}
	return out
}

// ---- ingestion ----

// AddImage routes one library item to its shard and records its global
// identity. The engine-wide duplicate check runs first so a URL cannot
// land twice even if shard-local state were lost.
func (e *ShardedEngine) AddImage(url, annotation string, img *media.Image) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.urls[url]; dup {
		return fmt.Errorf("core: image %q already in library", url)
	}
	s := e.shardFor(url)
	g := uint64(len(e.order))
	pre := e.shards[s].Size()
	err := e.shards[s].addImageShard(url, annotation, img, g)
	// A WAL-append failure from the shard means "ingested but not
	// WAL-logged" — the document IS in the shard (and owns global OID g),
	// so the engine must record it or the next insert would reuse g and
	// corrupt the global mapping. Judge by what actually happened (the
	// shard grew), not by the error alone.
	if e.shards[s].Size() > pre {
		e.order = append(e.order, url)
		e.urls[url] = struct{}{}
		e.loc = append(e.loc, shardLoc{shard: s, local: bat.OID(pre)})
	}
	return err
}

// AddRaster re-attaches footage to an already-ingested URL on its shard.
func (e *ShardedEngine) AddRaster(url string, img *media.Image) error {
	return e.shards[e.shardFor(url)].AddRaster(url, img)
}

// Raster returns the stored raster for a URL.
func (e *ShardedEngine) Raster(url string) (*media.Image, bool) {
	return e.shards[e.shardFor(url)].Raster(url)
}

// Size reports the number of library items across all shards.
func (e *ShardedEngine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.urls)
}

// URLs returns the item URLs in global ingestion order.
func (e *ShardedEngine) URLs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.urls))
	for _, u := range e.order {
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// Indexed reports whether every shard's content index is current.
func (e *ShardedEngine) Indexed() bool {
	for _, sh := range e.shards {
		if !sh.Indexed() {
			return false
		}
	}
	return true
}

// ContentTerms returns the cluster words of a document by global OID.
// Crash gaps (order[oid] == "") resolve to nil, never to another
// document's terms.
func (e *ShardedEngine) ContentTerms(oid bat.OID) []string {
	e.mu.RLock()
	if uint64(oid) >= uint64(len(e.loc)) || e.order[oid] == "" {
		e.mu.RUnlock()
		return nil
	}
	l := e.loc[oid]
	e.mu.RUnlock()
	return e.shards[l.shard].ContentTerms(l.local)
}

// Thesaurus returns the shared association thesaurus.
func (e *ShardedEngine) Thesaurus() *thesaurus.Thesaurus {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.thes
}

// SchemaSource returns the DDL (identical on every shard).
func (e *ShardedEngine) SchemaSource() string { return e.shards[0].SchemaSource() }

// urlOf resolves a global OID through the ingestion order.
func (e *ShardedEngine) urlOf(oid bat.OID) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if uint64(oid) >= uint64(len(e.order)) {
		return ""
	}
	return e.order[oid]
}

func (e *ShardedEngine) requireIndex() error {
	if !e.Indexed() {
		return fmt.Errorf("core: content index not built (run BuildContentIndex)")
	}
	return nil
}

// ---- index build (global pipeline) ----

// BuildContentIndex runs the Section 5.1 pipeline ONCE over the global
// collection — clustering and collection statistics are global by nature —
// then distributes each shard's slice of the result. See the type comment
// for why a per-shard build would break cross-shard comparability.
func (e *ShardedEngine) BuildContentIndex(opts IndexOptions) error {
	return e.buildIndex(opts, newLocalPipeline(e.rasterLookup()))
}

// BuildContentIndexDistributed is BuildContentIndex against daemons
// discovered through the data dictionary.
func (e *ShardedEngine) BuildContentIndexDistributed(opts IndexOptions, dictAddr string) error {
	p, err := newRemotePipeline(e.rasterLookup(), dictAddr)
	if err != nil {
		return err
	}
	return e.buildIndex(opts, p)
}

// rasterLookup resolves rasters across shards (routing is pure, so no
// table is needed).
func (e *ShardedEngine) rasterLookup() func(url string) (*media.Image, bool) {
	return func(url string) (*media.Image, bool) {
		return e.shards[e.shardFor(url)].Raster(url)
	}
}

func (e *ShardedEngine) buildIndex(opts IndexOptions, pipe segmentExtractor) error {
	defer pipe.close()
	e.mu.Lock()
	defer e.mu.Unlock()

	// Dense global order for the pipeline (skip crash gaps).
	order := make([]string, 0, len(e.urls))
	for _, u := range e.order {
		if u != "" {
			order = append(order, u)
		}
	}
	imageWords, err := runExtraction(pipe, opts, order)
	if err != nil {
		return err
	}

	// Global collection statistics and vocabulary for both CONTREPs, from
	// exactly the token streams the shards will insert.
	anns := e.annotationsLocked()
	annTokens := make([][]string, len(order))
	imgTerms := make([][]string, len(order))
	var thDocs []thesaurus.Doc
	for i, url := range order {
		ann := anns[url]
		annTokens[i] = ir.Analyze(ann)
		imgTerms[i] = dedupSorted(append([]string(nil), imageWords[url]...))
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: annTokens[i], Concepts: imgTerms[i]})
		}
	}
	gsAnn := ir.CollectionStats(annTokens)
	gsImg := ir.CollectionStats(imgTerms)
	annVocab := sortedKeys(gsAnn.DF)
	imgVocab := sortedKeys(gsImg.DF)

	// Per-shard populate, in parallel: register this shard's statistics
	// overrides, install its slice of the content words, union the global
	// vocabulary into its dictionaries, Finalize.
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *Mirror) {
			defer wg.Done()
			ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", gsAnn)
			ir.SetGlobalStats(sh.DB, InternalSet+"_image", gsImg)
			errs[i] = sh.populateShardIndex(imageWords, annVocab, imgVocab)
		}(i, sh)
	}
	wg.Wait()
	// The overrides have served their purpose once Finalize persisted the
	// derived columns; clear them (also on failure) so the package-global
	// registry does not pin shard databases for the process lifetime.
	for _, sh := range e.shards {
		ir.SetGlobalStats(sh.DB, InternalSet+"_annotation", nil)
		ir.SetGlobalStats(sh.DB, InternalSet+"_image", nil)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: indexing shard %d: %w", i, err)
		}
	}

	// One global thesaurus, shared by reference: every shard checkpoints
	// the same state, and feedback reinforcement (logged on shard 0)
	// mutates the one object all query paths read.
	e.thes = thesaurus.Build(thDocs)
	for _, sh := range e.shards {
		sh.setThesaurus(e.thes)
	}
	return nil
}

// annotationsLocked reads every document's annotation from the shard
// library BATs (annotations are stored data, not engine state). Callers
// hold e.mu.
func (e *ShardedEngine) annotationsLocked() map[string]string {
	out := make(map[string]string, len(e.urls))
	for _, sh := range e.shards {
		annB, ok := sh.DB.BAT(LibrarySet + "_annotation")
		if !ok {
			continue
		}
		for i, u := range sh.order {
			if v, ok := annB.Find(bat.OID(i)); ok {
				s, _ := v.(string)
				out[u] = s
			}
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- scatter-gather queries ----

// hitWorse orders hits under the ranked-retrieval total order: score
// descending, global OID ascending on ties — the same order a single
// store's ranking uses, which is what makes the merge a pure top-k union.
func hitWorse(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.OID > b.OID
}

// fanOut runs f on every shard concurrently and returns the first error.
func (e *ShardedEngine) fanOut(f func(s int, sh *Mirror) error) error {
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *Mirror) {
			defer wg.Done()
			errs[i] = f(i, sh)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}

// gatherHits fans a ranking query out to every shard and merges the
// shard-local rankings into the global one. k > 0 shares one pruning
// threshold across all shards' scans and merges through the bounded
// selector; k <= 0 returns the full ranking.
func (e *ShardedEngine) gatherHits(src string, params map[string]moa.Param, k int) ([]Hit, error) {
	var theta *bat.TopKThreshold
	if k > 0 {
		theta = bat.NewTopKThreshold()
	}
	perShard := make([][]Hit, len(e.shards))
	err := e.fanOut(func(s int, sh *Mirror) error {
		eng := &moa.Engine{DB: sh.Eng.DB, Opts: sh.Eng.Opts}
		if k > 0 {
			eng.Opts.TopK = k
			eng.Opts.TopKTheta = theta
		}
		res, err := eng.Query(src, params)
		if err != nil {
			return err
		}
		globals := sh.globalOIDsSnapshot()
		hits := make([]Hit, 0, len(res.Rows))
		for _, row := range res.Rows {
			if uint64(row.OID) >= uint64(len(globals)) {
				return fmt.Errorf("local OID %d beyond %d mapped documents", row.OID, len(globals))
			}
			score, _ := row.Value.(float64)
			g := bat.OID(globals[row.OID])
			hits = append(hits, Hit{OID: g, URL: e.urlOf(g), Score: score})
		}
		// An exhaustive fallback returns unranked rows; rank them locally
		// so the merge below sees each shard's best first either way.
		if !res.Ranked && k > 0 && len(hits) > k {
			hits = topKHits(hits, k)
		}
		perShard[s] = hits
		return nil
	})
	if err != nil {
		return nil, err
	}
	if k > 0 {
		merged := bat.NewBoundedTopK(k, hitWorse)
		for _, hits := range perShard {
			for _, h := range hits {
				merged.Offer(h)
			}
		}
		return merged.Ranked(), nil
	}
	var all []Hit
	for _, hits := range perShard {
		all = append(all, hits...)
	}
	sort.Slice(all, func(i, j int) bool { return hitWorse(all[j], all[i]) })
	return all, nil
}

// topKHits cuts hits to the k best under hitWorse.
func topKHits(hits []Hit, k int) []Hit {
	h := bat.NewBoundedTopK(k, hitWorse)
	for _, x := range hits {
		h.Offer(x)
	}
	return h.Ranked()
}

// QueryAnnotations ranks the whole collection against a free-text query —
// scatter, then gather; see Mirror.QueryAnnotations for semantics.
func (e *ShardedEngine) QueryAnnotations(text string, k int) ([]Hit, error) {
	if err := e.requireIndex(); err != nil {
		return nil, err
	}
	return e.gatherHits(annotationQuery, ir.QueryParams(ir.Analyze(text)), k)
}

// QueryContent ranks by image content given cluster words.
func (e *ShardedEngine) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	if err := e.requireIndex(); err != nil {
		return nil, err
	}
	return e.gatherHits(contentQuery, ir.QueryParams(clusterWords), k)
}

// QueryDualCoding combines annotation and content evidence (#sum); the
// combination runs on global OIDs, so it is shard-oblivious.
func (e *ShardedEngine) QueryDualCoding(text string, k int) ([]Hit, error) {
	if err := e.requireIndex(); err != nil {
		return nil, err
	}
	return queryDualCoding(e, text, k)
}

// ExpandQuery maps free text to associated content clusters via the
// shared thesaurus.
func (e *ShardedEngine) ExpandQuery(text string, topK int) []string {
	thes := e.Thesaurus()
	if thes == nil {
		return nil
	}
	assocs := thes.Associate(ir.Analyze(text), topK)
	out := make([]string, len(assocs))
	for i, a := range assocs {
		out[i] = a.Concept
	}
	return out
}

// WeightedContentScores scatters the weighted-sum scoring and gathers the
// per-shard score maps under global OIDs (shards are disjoint, so the
// merge is a plain union).
func (e *ShardedEngine) WeightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	perShard := make([]ir.Scores, len(e.shards))
	err := e.fanOut(func(s int, sh *Mirror) error {
		scores, err := sh.WeightedContentScores(terms, weights)
		if err != nil {
			return err
		}
		globals := sh.globalOIDsSnapshot()
		out := make(ir.Scores, len(scores))
		for local, score := range scores {
			if local >= uint64(len(globals)) {
				return fmt.Errorf("local OID %d beyond %d mapped documents", local, len(globals))
			}
			out[globals[local]] = score
		}
		perShard[s] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range perShard {
		total += len(s)
	}
	merged := make(ir.Scores, total)
	for _, s := range perShard {
		for g, score := range s {
			merged[g] = score
		}
	}
	return merged, nil
}

// NewSession starts a relevance-feedback session over the sharded
// collection; judgments arrive as global OIDs (what hits carry).
func (e *ShardedEngine) NewSession(text string) (*Session, error) { return newSession(e, text) }

// reinforceLogged routes feedback reinforcement to shard 0 — the durable
// authority for the shared thesaurus (its WAL carries the feedback
// records; every shard checkpoints the same shared state).
func (e *ShardedEngine) reinforceLogged(words, concepts []string, relevant bool) error {
	return e.shards[0].reinforceLogged(words, concepts, relevant)
}

// Query runs a raw Moa query across all shards (see QueryTopK).
func (e *ShardedEngine) Query(src string, queryTerms []string) (*moa.Result, error) {
	return e.QueryTopK(src, queryTerms, 0)
}

// QueryTopK runs a raw Moa query on every shard and merges set-typed
// results under global OIDs: k > 0 merges the shard rankings through the
// bounded selector (rows come back ranked and cut — on a sharded store
// the cut always happens engine-side, even for plans served exhaustively
// on the shards); k <= 0 concatenates in ascending global OID order.
// Scalar queries are refused: aggregating arbitrary scalars across shards
// is query-specific, and silently summing or averaging would lie.
func (e *ShardedEngine) QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error) {
	var params map[string]moa.Param
	if queryTerms != nil {
		params = ir.QueryParams(queryTerms)
	}
	var theta *bat.TopKThreshold
	if k > 0 {
		theta = bat.NewTopKThreshold()
	}
	results := make([]*moa.Result, len(e.shards))
	err := e.fanOut(func(s int, sh *Mirror) error {
		eng := &moa.Engine{DB: sh.Eng.DB, Opts: sh.Eng.Opts}
		if k > 0 {
			eng.Opts.TopK = k
			eng.Opts.TopKTheta = theta
		}
		res, err := eng.Query(src, params)
		if err != nil {
			return err
		}
		if res.Rows == nil {
			return fmt.Errorf("scalar Moa queries cannot be merged across shards (run against one shard)")
		}
		globals := sh.globalOIDsSnapshot()
		for i := range res.Rows {
			local := res.Rows[i].OID
			if uint64(local) >= uint64(len(globals)) {
				return fmt.Errorf("local OID %d beyond %d mapped documents", local, len(globals))
			}
			res.Rows[i].OID = bat.OID(globals[local])
		}
		results[s] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &moa.Result{T: results[0].T}
	if k > 0 {
		merged := bat.NewBoundedTopK(k, rowWorse)
		for _, res := range results {
			for _, row := range res.Rows {
				merged.Offer(row)
			}
		}
		out.Rows = merged.Ranked()
		out.Ranked = true
		return out, nil
	}
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].OID < out.Rows[j].OID })
	return out, nil
}

// ---- persistence ----

// shardDirName is the store subdirectory of one shard.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// ShardedPersistOptions configures OpenShardedPersistent.
type ShardedPersistOptions struct {
	Dir    string // store root; shards live in Dir/shard-NNN
	Shards int    // shard count; 0 = reopen with the stored layout
	// Per-shard pool/WAL knobs, identical to PersistOptions.
	WALSync bool
	Verify  bool
	NoMmap  bool
	Budget  int64 // total byte budget, split evenly across shards
}

// ShardRecoveryStats aggregates per-shard recovery.
type ShardRecoveryStats struct {
	Shards     int
	BATs       int
	WALRecords int
	WALSkipped int
	TornTails  []int // shard indexes whose WAL tail was truncated
}

// OpenShardedPersistent opens (or initialises) a sharded store: the root
// holds one BAT-buffer-pool directory per shard, each with its own
// manifest, heap files and WAL. Shards recover in parallel — checkpoint
// load plus WAL replay each — and the engine rebuilds the global mapping
// from the shard-local identities. The layout is a stored property of the
// shard manifests: opts.Shards must match an existing store (0 adopts the
// stored count), and a directory holding a standalone store is refused —
// resharding in place is not supported.
func OpenShardedPersistent(opts ShardedPersistOptions) (*ShardedEngine, ShardRecoveryStats, error) {
	var stats ShardRecoveryStats
	if opts.Dir == "" {
		return nil, stats, fmt.Errorf("core: sharded store needs a directory")
	}
	if storage.IsStore(opts.Dir) {
		return nil, stats, fmt.Errorf("core: %s holds a standalone store; resharding in place is not supported", opts.Dir)
	}
	stored := 0
	for {
		if _, err := os.Stat(filepath.Join(opts.Dir, shardDirName(stored))); err != nil {
			break
		}
		stored++
	}
	n := opts.Shards
	switch {
	case stored == 0 && n < 1:
		return nil, stats, fmt.Errorf("core: fresh sharded store needs an explicit shard count")
	case stored == 0:
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, stats, err
		}
	case n == 0:
		n = stored // reopen with the layout the store was built with
	case n != stored:
		return nil, stats, fmt.Errorf("core: %s was built with %d shards, not the requested %d", opts.Dir, stored, n)
	}

	e := &ShardedEngine{
		shards:     make([]*Mirror, n),
		urls:       map[string]struct{}{},
		persistent: true,
		root:       opts.Dir,
	}
	perStats := make([]RecoveryStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.shards[i], perStats[i], errs[i] = OpenPersistent(PersistOptions{
				Dir:        filepath.Join(opts.Dir, shardDirName(i)),
				WALSync:    opts.WALSync,
				Verify:     opts.Verify,
				NoMmap:     opts.NoMmap,
				Budget:     opts.Budget / int64(n),
				ShardIndex: i,
				ShardCount: n,
			})
		}(i)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	if firstErr != nil {
		for _, sh := range e.shards {
			if sh != nil {
				sh.ClosePersistent()
			}
		}
		return nil, stats, firstErr
	}

	stats.Shards = n
	for i, ps := range perStats {
		stats.BATs += ps.BATs
		stats.WALRecords += ps.WALRecords
		stats.WALSkipped += ps.WALSkipped
		if ps.TornTail {
			stats.TornTails = append(stats.TornTails, i)
		}
	}

	if err := e.rebuildGlobalMapping(); err != nil {
		for _, sh := range e.shards {
			sh.ClosePersistent()
		}
		return nil, stats, err
	}

	// Shard 0 is the thesaurus authority: it replayed the feedback WAL.
	// Install its instance everywhere so all query paths share one object
	// (and every shard checkpoints the authoritative state from now on).
	e.thes = e.shards[0].Thesaurus()
	if e.thes != nil {
		for _, sh := range e.shards[1:] {
			sh.setThesaurus(e.thes)
		}
	}
	return e, stats, nil
}

// rebuildGlobalMapping reconstructs order/loc from the shard-local
// (local OID → global OID) maps the shards recovered. A gap — a global
// OID no shard claims — means a shard lost WAL-tail inserts in a crash
// (possible without -wal-sync); the slot is kept empty rather than
// renumbering, so surviving documents keep their identity.
func (e *ShardedEngine) rebuildGlobalMapping() error {
	maxG := -1
	for _, sh := range e.shards {
		for _, g := range sh.globalOIDs {
			if int(g) > maxG {
				maxG = int(g)
			}
		}
	}
	e.order = make([]string, maxG+1)
	e.loc = make([]shardLoc, maxG+1)
	for s, sh := range e.shards {
		if len(sh.globalOIDs) != len(sh.order) {
			return fmt.Errorf("core: shard %d maps %d of %d documents", s, len(sh.globalOIDs), len(sh.order))
		}
		for i, g := range sh.globalOIDs {
			url := sh.order[i]
			if e.order[g] != "" {
				return fmt.Errorf("core: global OID %d claimed by both %q and %q", g, e.order[g], url)
			}
			e.order[g] = url
			e.loc[g] = shardLoc{shard: s, local: bat.OID(i)}
			e.urls[url] = struct{}{}
		}
	}
	return nil
}

// Persistent reports whether the engine was opened with
// OpenShardedPersistent.
func (e *ShardedEngine) Persistent() bool { return e.persistent }

// Checkpoint flushes every shard in parallel (each shard's manifest swap
// is its own atomic commit point; there is no cross-shard transaction —
// every shard is individually consistent, and the global mapping is
// shard-local data, so a crash between shard checkpoints loses at most
// unsynced WAL tails, never consistency). Stats are summed.
func (e *ShardedEngine) Checkpoint() (storage.CheckpointStats, error) {
	var total storage.CheckpointStats
	if !e.persistent {
		return total, fmt.Errorf("core: Checkpoint on a non-persistent engine")
	}
	var mu sync.Mutex
	err := e.fanOut(func(s int, sh *Mirror) error {
		st, err := sh.Checkpoint()
		if err != nil {
			return err
		}
		mu.Lock()
		total.Written += st.Written
		total.Skipped += st.Skipped
		total.Bytes += st.Bytes
		mu.Unlock()
		return nil
	})
	return total, err
}

// ClosePersistent releases every shard's WAL and pool.
func (e *ShardedEngine) ClosePersistent() error {
	var firstErr error
	for _, sh := range e.shards {
		if err := sh.ClosePersistent(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Serve runs the standard RPC server over the sharded engine; clients see
// the same protocol a single store serves.
func (e *ShardedEngine) Serve(addr, dictAddr string) (string, func(), error) {
	return Serve(e, addr, dictAddr)
}
