package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Epoch-keyed query result cache.
//
// PR 5's epoch snapshots make invalidation trivial: every published
// epoch carries a monotone sequence number, and cache entries are keyed
// on it — an epoch swap (Refresh, recovery, rebuild) is a generation bump
// that makes every old entry unreachable, with no locking against the
// query path. The publish choke points (publishEpochLocked /
// publishEngineEpochLocked) additionally sweep stale generations out so
// their bytes return promptly.
//
// The cache is bounded by bytes with per-stripe LRU eviction. Stripes are
// shared-nothing: a key hashes to exactly one stripe with its own mutex,
// list and budget, so concurrent queries on different keys rarely
// contend. Hits return a shared immutable []Hit — callers must treat
// cached results as read-only (every caller in the tree renders or copies
// them).

// cacheKind separates the three ranked query surfaces in the key space.
type cacheKind uint8

const (
	cacheAnnotations cacheKind = iota + 1
	cacheContent
	cacheDual
)

// cacheStripeCount is the number of shared-nothing stripes (power of two).
const cacheStripeCount = 16

// cacheKey is scalar-only so lookups allocate nothing.
type cacheKey struct {
	gen  int64 // epoch sequence number the result was computed against
	kind cacheKind
	k    int
	hash uint64 // fnv64a over the query surface (text or terms)
}

// cacheEntry pins the query surface verbatim so a hash collision can
// never serve a wrong result: hits are returned only when text and terms
// match the stored key exactly.
type cacheEntry struct {
	key   cacheKey
	text  string
	terms []string
	hits  []Hit
	size  int64
}

type cacheStripe struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *cacheEntry
	idx   map[cacheKey]*list.Element
	bytes int64
	max   int64
}

// resultCache is the engine-wide cache; the zero Pointer (nil *resultCache)
// means caching is disabled, and all methods are nil-receiver safe.
type resultCache struct {
	stripes [cacheStripeCount]cacheStripe
	hits    atomic.Int64
	misses  atomic.Int64
}

// newResultCache builds a cache bounded to roughly maxBytes across all
// stripes; maxBytes <= 0 returns nil (disabled).
func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &resultCache{}
	per := maxBytes / cacheStripeCount
	if per < 1 {
		per = 1
	}
	for i := range c.stripes {
		c.stripes[i].lru = list.New()
		c.stripes[i].idx = make(map[cacheKey]*list.Element)
		c.stripes[i].max = per
	}
	return c
}

// cacheHash is fnv64a over the query surface; inlined byte-at-a-time so a
// cache hit performs zero allocations.
func cacheHash(text string, terms []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(text); i++ {
		h = (h ^ uint64(text[i])) * prime64
	}
	for _, t := range terms {
		h = (h ^ 0xff) * prime64 // term separator
		for i := 0; i < len(t); i++ {
			h = (h ^ uint64(t[i])) * prime64
		}
	}
	return h
}

// matches reports whether the entry was stored for exactly this query
// surface (collision guard).
func (e *cacheEntry) matches(text string, terms []string) bool {
	if e.text != text || len(e.terms) != len(terms) {
		return false
	}
	for i := range terms {
		if e.terms[i] != terms[i] {
			return false
		}
	}
	return true
}

// get returns the cached ranking for (gen, kind, k, surface) and whether
// it was present. The returned slice is shared: read-only for the caller.
// k <= 0 requests (full rankings) are never cached.
func (c *resultCache) get(gen int64, kind cacheKind, k int, text string, terms []string) ([]Hit, bool) {
	if c == nil || k <= 0 {
		return nil, false
	}
	key := cacheKey{gen: gen, kind: kind, k: k, hash: cacheHash(text, terms)}
	st := &c.stripes[key.hash&(cacheStripeCount-1)]
	st.mu.Lock()
	el, ok := st.idx[key]
	if ok {
		e := el.Value.(*cacheEntry)
		if e.matches(text, terms) {
			st.lru.MoveToFront(el)
			hits := e.hits
			st.mu.Unlock()
			c.hits.Add(1)
			return hits, true
		}
	}
	st.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put stores a computed ranking. The hits slice is retained and shared
// with future get callers; the query surface is copied (callers may reuse
// their terms slice). Entries larger than a whole stripe are not cached.
func (c *resultCache) put(gen int64, kind cacheKind, k int, text string, terms []string, hits []Hit) {
	if c == nil || k <= 0 {
		return
	}
	key := cacheKey{gen: gen, kind: kind, k: k, hash: cacheHash(text, terms)}
	e := &cacheEntry{key: key, text: text, hits: hits}
	if len(terms) > 0 {
		e.terms = append(make([]string, 0, len(terms)), terms...)
	}
	e.size = cacheEntrySize(e)
	st := &c.stripes[key.hash&(cacheStripeCount-1)]
	if e.size > st.max {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.idx[key]; ok {
		// Lost a race with another miss on the same key: keep the
		// incumbent (both were computed against the same epoch).
		st.lru.MoveToFront(el)
		return
	}
	st.idx[key] = st.lru.PushFront(e)
	st.bytes += e.size
	for st.bytes > st.max {
		back := st.lru.Back()
		if back == nil {
			break
		}
		st.evictLocked(back)
	}
}

// evictLocked removes one entry; the stripe mutex is held.
func (st *cacheStripe) evictLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	st.lru.Remove(el)
	delete(st.idx, e.key)
	st.bytes -= e.size
}

// sweep drops every entry computed against a generation older than gen.
// Publishing an epoch calls this: correctness never depends on it (stale
// generations can no longer be looked up), it just returns the bytes.
func (c *resultCache) sweep(gen int64) {
	if c == nil {
		return
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		var next *list.Element
		for el := st.lru.Front(); el != nil; el = next {
			next = el.Next()
			if el.Value.(*cacheEntry).key.gen < gen {
				st.evictLocked(el)
			}
		}
		st.mu.Unlock()
	}
}

// cacheEntrySize estimates the entry's resident bytes (slice headers,
// strings, map/list bookkeeping) for the LRU budget.
func cacheEntrySize(e *cacheEntry) int64 {
	n := int64(128) // entry struct + list element + index slot overhead
	n += int64(len(e.text))
	for _, t := range e.terms {
		n += int64(len(t)) + 16
	}
	for _, h := range e.hits {
		n += int64(len(h.URL)) + 32
	}
	return n
}

// CacheStats reports result-cache effectiveness counters.
type CacheStats struct {
	Hits   int64
	Misses int64
	Bytes  int64
	Items  int
}

// stats snapshots the counters (nil-safe, like every method).
func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s.Bytes += st.bytes
		s.Items += st.lru.Len()
		st.mu.Unlock()
	}
	return s
}
