package core

import (
	"encoding/json"
	"fmt"

	"mirror/internal/bat"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// persistMeta is the JSON sidecar stored in the manifest's extra map.
type persistMeta struct {
	Order        []string            `json:"order"`
	ContentTerms map[uint64][]string `json:"content_terms"`
	Indexed      bool                `json:"indexed"`
	ThesDocs     []thesaurus.Doc     `json:"thesaurus_docs,omitempty"`
}

// Save persists the database (all BATs), the schema, and the demo metadata
// to dir. Rasters are NOT saved — the media server owns the footage; a
// loaded instance answers queries immediately, while re-running the
// extraction pipeline requires re-attaching rasters with AddRaster.
func (m *Mirror) Save(dir string) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	meta := persistMeta{
		Order:        m.order,
		ContentTerms: map[uint64][]string{},
		Indexed:      m.indexed,
	}
	for oid, terms := range m.contentTerms {
		meta.ContentTerms[uint64(oid)] = terms
	}
	if m.Thes != nil {
		meta.ThesDocs = m.thesaurusDocsLocked()
	}
	mb, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("core: marshal metadata: %w", err)
	}
	extra := map[string]string{
		"schema": m.DB.SchemaSource(),
		"meta":   string(mb),
	}
	return storage.Save(dir, m.DB.Snapshot(), extra)
}

// thesaurusDocsLocked reconstructs the thesaurus training documents from
// the stored annotations and content terms (the thesaurus itself is rebuilt
// from them at load; feedback-learned adjustments reset, as in the
// prototype, which kept them per session).
func (m *Mirror) thesaurusDocsLocked() []thesaurus.Doc {
	libAnn, ok := m.DB.BAT(LibrarySet + "_annotation")
	if !ok {
		return nil
	}
	var docs []thesaurus.Doc
	for i := range m.order {
		v, ok := libAnn.Find(bat.OID(i))
		if !ok {
			continue
		}
		ann, _ := v.(string)
		if ann == "" {
			continue
		}
		terms := m.contentTerms[bat.OID(i)]
		if len(terms) == 0 {
			continue
		}
		docs = append(docs, thesaurus.Doc{Words: AnalyzeQuery(ann), Concepts: terms})
	}
	return docs
}

// Load opens a saved Mirror database.
func Load(dir string) (*Mirror, error) {
	bats, extra, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	db := moa.NewDatabase()
	if err := db.DefineFromSource(extra["schema"]); err != nil {
		return nil, fmt.Errorf("core: load schema: %w", err)
	}
	for name, b := range bats {
		db.PutBAT(name, b)
	}
	db.SyncAfterLoad()

	m := &Mirror{
		DB:           db,
		Eng:          moa.NewEngine(db),
		rasters:      map[string]*media.Image{},
		contentTerms: map[bat.OID][]string{},
	}
	var meta persistMeta
	if raw := extra["meta"]; raw != "" {
		if err := json.Unmarshal([]byte(raw), &meta); err != nil {
			return nil, fmt.Errorf("core: parse metadata: %w", err)
		}
	}
	m.order = meta.Order
	m.indexed = meta.Indexed
	for oid, terms := range meta.ContentTerms {
		m.contentTerms[bat.OID(oid)] = terms
	}
	if len(meta.ThesDocs) > 0 {
		m.Thes = thesaurus.Build(meta.ThesDocs)
	}
	return m, nil
}

// AddRaster re-attaches footage to an already-ingested URL (after Load),
// enabling the extraction pipeline to run again.
func (m *Mirror) AddRaster(url string, img *media.Image) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	found := false
	for _, u := range m.order {
		if u == url {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: URL %q is not in the library", url)
	}
	m.rasters[url] = img
	return nil
}
