package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// Persistence of a Mirror instance. Two modes share one on-disk format
// (the BAT buffer pool of internal/storage):
//
//   - Save/Load: whole-database snapshot, for tools and tests.
//   - OpenPersistent: a long-running server opens the store once, keeps
//     the pool mapped for zero-copy reads, logs every insert and
//     feedback event to an append-only WAL, and calls Checkpoint to
//     flush only the BATs that changed. On restart, recovery = load the
//     last checkpoint, then replay the WAL tail.
//
// The WAL is logical, not physical: a record names the operation
// (insert / feedback) rather than BAT deltas, so replay goes through
// exactly the code path the original operation used.

// persistMeta is the JSON sidecar stored in the manifest's extra map.
// ThesState carries the full thesaurus — including relevance-feedback
// adjustments, which a rebuild from ThesDocs would lose; ThesDocs is
// kept as the fallback for stores written before ThesState existed.
type persistMeta struct {
	Order        []string            `json:"order"`
	ContentTerms map[uint64][]string `json:"content_terms"`
	Indexed      bool                `json:"indexed"`
	ThesState    *thesaurus.State    `json:"thesaurus_state,omitempty"`
	ThesDocs     []thesaurus.Doc     `json:"thesaurus_docs,omitempty"`
	Shard        *shardMeta          `json:"shard,omitempty"`
	// Epoch is the last published index epoch number; recovery resumes
	// the sequence from here (replayed publishes advance it further).
	Epoch int64 `json:"epoch,omitempty"`
	// Codebook is the frozen clustering of the last full build, what lets
	// Refresh keep assigning new documents after a restart.
	Codebook *Codebook `json:"codebook,omitempty"`

	// Distributed serving state (internal/dist; zero elsewhere).
	// EpochTag is the router-assigned tag of the last applied shard
	// publish; AnnStats/ImgStats are that publish's global statistics (a
	// restarted primary needs them to synthesise follower resync
	// streams). ReplPos/ReplNonce are a follower's replication stream
	// position and the primary incarnation it counts under.
	EpochTag  uint64          `json:"epoch_tag,omitempty"`
	AnnStats  *ir.GlobalStats `json:"ann_stats,omitempty"`
	ImgStats  *ir.GlobalStats `json:"img_stats,omitempty"`
	ReplPos   uint64          `json:"repl_pos,omitempty"`
	ReplNonce uint64          `json:"repl_nonce,omitempty"`
}

// shardMeta makes the sharded layout a stored property of the MANIFEST: a
// shard store records which slice of which layout it is, so a sharded
// engine reopens a store with exactly the layout it was built with (and
// refuses a contradicting -shards request). GlobalOIDs aligns with Order.
type shardMeta struct {
	Index      int      `json:"index"`
	Count      int      `json:"count"`
	GlobalOIDs []uint64 `json:"global_oids"`
}

// PersistOptions configures OpenPersistent.
type PersistOptions struct {
	Dir     string // store directory (created when absent)
	WALSync bool   // fsync the WAL on every append (durable per-op)
	Verify  bool   // checksum heap files on load
	NoMmap  bool   // force the portable (copying) load path
	Budget  int64  // pool byte budget for clean unpinned BATs; 0 = unlimited

	// StoreCodec selects the postings segment layout ("block" or "raw";
	// empty = block). A store recovered in the other layout is converted
	// in memory during open — the conversion is lossless both ways and
	// persists at the next checkpoint.
	StoreCodec string

	// ShardIndex/ShardCount declare the store a member of a sharded
	// layout (ShardCount > 0). A fresh store is stamped with them; an
	// existing store must have been built with the same identity —
	// resharding a store in place is refused. Both zero for standalone
	// stores. Set by OpenShardedPersistent; not normally set by hand.
	ShardIndex int
	ShardCount int
}

// ---- write-ahead log ----

// walDoc is one document of a "publish" record: the URL identifies the
// (already WAL-logged or checkpointed) library item, Words carries its
// content cluster terms — extraction is NOT re-runnable during recovery
// (rasters are never persisted), so the publish record captures its
// output.
type walDoc struct {
	URL   string   `json:"url"`
	Words []string `json:"words,omitempty"`
}

// walRecord is one logical WAL entry.
type walRecord struct {
	Op         string   `json:"op"` // "insert" | "feedback" | "publish" | "merge"
	URL        string   `json:"url,omitempty"`
	Annotation string   `json:"annotation,omitempty"`
	Words      []string `json:"words,omitempty"`
	Concepts   []string `json:"concepts,omitempty"`
	Relevant   bool     `json:"relevant,omitempty"`
	// Global is the engine-wide OID of a sharded insert (nil on
	// standalone stores): replay must restore the local→global mapping
	// for documents the checkpoint has not captured yet.
	Global *uint64 `json:"global,omitempty"`

	// "publish" records: Base is the covered-document count the delta
	// applies on top of (replay refuses a mismatching base — a full
	// rebuild ran after the checkpoint and was not logged, so the delta
	// no longer applies); Docs are the newly covered documents.
	Base int      `json:"base,omitempty"`
	Docs []walDoc `json:"docs,omitempty"`

	// "merge" records: the compaction applied to Prefix's segment
	// directory. SegsBefore guards idempotent replay (a checkpoint taken
	// after the merge already reflects it; the count mismatch skips).
	Prefix     string `json:"prefix,omitempty"`
	MergeLo    int    `json:"merge_lo,omitempty"`
	MergeHi    int    `json:"merge_hi,omitempty"`
	SegsBefore int    `json:"segs_before,omitempty"`

	// Distributed "publish" records (internal/dist) are self-contained:
	// a networked shard member has no in-process engine to re-register
	// global statistics during recovery, so the record carries them (and,
	// for full builds, the frozen codebook). Tag is the router-assigned
	// publish tag the resulting epoch serves under; Full marks a full
	// (re)build covering the whole local corpus from Base 0.
	AnnStats *ir.GlobalStats `json:"ann_stats,omitempty"`
	ImgStats *ir.GlobalStats `json:"img_stats,omitempty"`
	Codebook *Codebook       `json:"codebook,omitempty"`
	Tag      uint64          `json:"tag,omitempty"`
	Full     bool            `json:"full,omitempty"`

	// Replication stamps, set only by a follower logging a shipped
	// record to its own WAL: Ship is the record's position in the
	// primary's replication stream, ShipNonce the primary incarnation.
	// Recovery resumes pulling from the highest replayed stamp.
	Ship      uint64 `json:"ship,omitempty"`
	ShipNonce uint64 `json:"ship_nonce,omitempty"`
}

// WAL framing: every record is [len uint32][crc32c uint32][payload],
// little-endian, payload = JSON. Replay accepts the longest valid
// prefix: a torn or corrupt tail (the expected crash shape for an
// append-only file) is truncated away, never silently half-applied.
const (
	walName = "wal.log"
	// maxWALRecord bounds one record's JSON payload; append enforces it
	// so replay (which treats larger lengths as a torn tail) can never
	// misread an acknowledged record as corruption.
	maxWALRecord = 1 << 24
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

type wal struct {
	mu       sync.Mutex
	f        *os.File
	syncEach bool
}

// replayWAL parses the longest valid record prefix of the WAL at path.
// It returns the records and the byte offset where valid data ends;
// tornTail reports whether anything (a torn or corrupt suffix) follows.
func replayWAL(path string) (recs []walRecord, validEnd int64, tornTail bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("core: read WAL: %w", err)
	}
	off := int64(0)
	for int64(len(data))-off >= 8 {
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxWALRecord || off+8+int64(n) > int64(len(data)) {
			break
		}
		payload := data[off+8 : off+8+int64(n)]
		if crc32.Checksum(payload, walCRCTable) != crc {
			break
		}
		var r walRecord
		if json.Unmarshal(payload, &r) != nil {
			break
		}
		recs = append(recs, r)
		off += 8 + int64(n)
	}
	return recs, off, off < int64(len(data)), nil
}

// openWAL opens (creating if needed) the WAL for appending, truncating
// any torn tail found past validEnd.
func openWAL(path string, validEnd int64, syncEach bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open WAL: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: truncate WAL tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, syncEach: syncEach}, nil
}

// appendPayload frames and writes one already-marshaled record.
func (w *wal) appendPayload(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(payload) > maxWALRecord {
		return fmt.Errorf("core: WAL record of %d bytes exceeds the %d-byte limit", len(payload), maxWALRecord)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, walCRCTable))
	copy(buf[8:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("core: append WAL: %w", err)
	}
	if w.syncEach {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("core: fsync WAL: %w", err)
		}
	}
	return nil
}

// reset empties the WAL after a checkpoint has made its records
// redundant.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("core: reset WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error { return w.f.Close() }

// ---- snapshot save / load ----

// Save persists the database (all BATs), the schema, and the demo
// metadata to dir as one full checkpoint. Rasters are NOT saved — the
// media server owns the footage; a loaded instance answers queries
// immediately, while re-running the extraction pipeline requires
// re-attaching rasters with AddRaster.
func (m *Mirror) Save(dir string) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	extra, err := m.persistExtraLocked()
	if err != nil {
		return err
	}
	if err := storage.Save(dir, m.DB.Snapshot(), extra); err != nil {
		return err
	}
	// A snapshot is complete by definition: drop any WAL a previous
	// persistent instance left in this directory, or a later
	// OpenPersistent would replay stale records on top of the snapshot.
	if err := os.Remove(filepath.Join(dir, walName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: remove stale WAL: %w", err)
	}
	return nil
}

// persistExtraLocked serialises the schema and demo metadata for the
// store manifest. Callers hold m.mu.
func (m *Mirror) persistExtraLocked() (map[string]string, error) {
	meta := persistMeta{
		Order:        m.order,
		ContentTerms: map[uint64][]string{},
		Indexed:      m.indexed,
	}
	for oid, terms := range m.contentTerms {
		meta.ContentTerms[uint64(oid)] = terms
	}
	if m.Thes != nil {
		meta.ThesState = m.Thes.State()
	}
	if m.shardCount > 0 {
		meta.Shard = &shardMeta{
			Index:      m.shardIndex,
			Count:      m.shardCount,
			GlobalOIDs: m.globalOIDs,
		}
	}
	meta.Epoch = m.epochSeq
	meta.Codebook = m.codebook
	meta.EpochTag = m.lastPublishTag
	meta.AnnStats = m.lastAnnStats
	meta.ImgStats = m.lastImgStats
	meta.ReplPos = m.replPos
	meta.ReplNonce = m.replNonce
	mb, err := json.Marshal(&meta)
	if err != nil {
		return nil, fmt.Errorf("core: marshal metadata: %w", err)
	}
	return map[string]string{
		"schema": m.DB.SchemaSource(),
		"meta":   string(mb),
	}, nil
}

// buildFromBATs assembles a Mirror from loaded BATs plus the manifest's
// extra metadata (shared by Load and OpenPersistent).
func buildFromBATs(bats map[string]*bat.BAT, extra map[string]string) (*Mirror, error) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(extra["schema"]); err != nil {
		return nil, fmt.Errorf("core: load schema: %w", err)
	}
	for name, b := range bats {
		db.PutBAT(name, b)
	}
	db.SyncAfterLoad()

	m := &Mirror{
		DB:           db,
		Eng:          moa.NewEngine(db),
		rasters:      map[string]*media.Image{},
		urls:         map[string]struct{}{},
		contentTerms: map[bat.OID][]string{},
	}
	m.thetaMemo.Store(newThetaMemo(defaultThetaMemoEntries))
	var meta persistMeta
	if raw := extra["meta"]; raw != "" {
		if err := json.Unmarshal([]byte(raw), &meta); err != nil {
			return nil, fmt.Errorf("core: parse metadata: %w", err)
		}
	}
	m.order = meta.Order
	for _, u := range m.order {
		m.urls[u] = struct{}{}
	}
	m.indexed = meta.Indexed
	for oid, terms := range meta.ContentTerms {
		m.contentTerms[bat.OID(oid)] = terms
	}
	switch {
	case meta.ThesState != nil:
		m.Thes = thesaurus.FromState(meta.ThesState)
	case len(meta.ThesDocs) > 0:
		m.Thes = thesaurus.Build(meta.ThesDocs)
	}
	m.epochSeq = meta.Epoch
	m.codebook = meta.Codebook
	m.lastPublishTag = meta.EpochTag
	m.lastAnnStats = meta.AnnStats
	m.lastImgStats = meta.ImgStats
	m.replPos = meta.ReplPos
	m.replNonce = meta.ReplNonce
	if meta.Shard != nil {
		m.shardIndex = meta.Shard.Index
		m.shardCount = meta.Shard.Count
		m.globalOIDs = meta.Shard.GlobalOIDs
		if len(m.globalOIDs) != len(m.order) {
			return nil, fmt.Errorf("core: shard meta lists %d global OIDs for %d documents",
				len(m.globalOIDs), len(m.order))
		}
	}
	return m, nil
}

// Load opens a saved Mirror database as an in-memory snapshot (no pool
// kept open, no WAL). Long-running servers should use OpenPersistent.
func Load(dir string) (*Mirror, error) {
	bats, extra, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	m, err := buildFromBATs(bats, extra)
	if err != nil {
		return nil, err
	}
	if m.indexed {
		m.mu.Lock()
		err = m.publishEpochLocked()
		m.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ---- persistent mode ----

// RecoveryStats reports what OpenPersistent found.
type RecoveryStats struct {
	BATs       int  // BATs in the checkpoint
	WALRecords int  // logical records replayed from the WAL
	WALSkipped int  // records already covered by the checkpoint (idempotent replay)
	TornTail   bool // a torn/corrupt WAL suffix was truncated
}

// OpenPersistent opens (or initialises) a durable Mirror store: the
// last checkpoint is loaded through the BAT buffer pool — zero-copy on
// linux — and the WAL tail is replayed on top, restoring every insert
// and feedback event since that checkpoint. The returned Mirror keeps
// the pool and WAL open; call Checkpoint to flush changed BATs and
// truncate the WAL, and ClosePersistent on shutdown.
func OpenPersistent(opts PersistOptions) (*Mirror, RecoveryStats, error) {
	var stats RecoveryStats
	codec, err := ir.CodecFromString(opts.StoreCodec)
	if err != nil {
		return nil, stats, err
	}
	pool, err := storage.OpenOrCreate(opts.Dir, storage.Options{
		Verify: opts.Verify, NoMmap: opts.NoMmap, Budget: opts.Budget,
	})
	if err != nil {
		return nil, stats, err
	}

	var m *Mirror
	names := pool.Names()
	if len(names) == 0 {
		if m, err = New(); err != nil {
			pool.Close()
			return nil, stats, err
		}
	} else {
		bats := make(map[string]*bat.BAT, len(names))
		for _, name := range names {
			// The pin taken by Get is held for the life of the process:
			// these BATs are installed in the logical database, so the
			// pool must never unmap them.
			b, err := pool.Get(name)
			if err != nil {
				pool.Close()
				return nil, stats, fmt.Errorf("core: recover %s: %w", opts.Dir, err)
			}
			bats[name] = b
		}
		if m, err = buildFromBATs(bats, pool.Extra()); err != nil {
			pool.Close()
			return nil, stats, err
		}
	}
	stats.BATs = len(names)

	// Register the postings codec before WAL replay: replayed publishes
	// derive their delta segments in it.
	ir.SetStoreCodec(m.DB, codec)

	// Shard identity: stamp a fresh store, verify an existing one. The
	// layout is a stored property of the manifest — a store only ever
	// reopens as the shard it was built as.
	if opts.ShardCount > 0 {
		switch {
		case m.shardCount == 0 && len(m.order) == 0:
			m.shardIndex, m.shardCount = opts.ShardIndex, opts.ShardCount
		case m.shardCount == 0:
			pool.Close()
			return nil, stats, fmt.Errorf("core: %s was built standalone; resharding in place is not supported", opts.Dir)
		case m.shardIndex != opts.ShardIndex || m.shardCount != opts.ShardCount:
			pool.Close()
			return nil, stats, fmt.Errorf("core: %s is shard %d/%d, not the requested %d/%d",
				opts.Dir, m.shardIndex, m.shardCount, opts.ShardIndex, opts.ShardCount)
		}
	}

	walPath := filepath.Join(opts.Dir, walName)
	recs, validEnd, torn, err := replayWAL(walPath)
	if err != nil {
		pool.Close()
		return nil, stats, err
	}
	stats.TornTail = torn
	for _, r := range recs {
		applied, err := m.applyWALRecord(r)
		if err != nil {
			pool.Close()
			return nil, stats, fmt.Errorf("core: WAL replay: %w", err)
		}
		if applied {
			stats.WALRecords++
		} else {
			stats.WALSkipped++
		}
		// A follower resumes pulling from the highest replication stamp
		// it durably applied (the checkpoint's position is the floor; a
		// torn WAL tail simply lowers the stamp, and the primary re-ships
		// the suffix for idempotent re-apply).
		if r.Ship > m.replPos {
			m.replPos = r.Ship
			if r.ShipNonce != 0 {
				m.replNonce = r.ShipNonce
			}
		}
	}

	// Serve the recovered index: one epoch publish restores snapshot-
	// isolated queries at exactly the replayed state (the sequence number
	// advances past every replayed publish, so epochs stay monotone
	// across the crash). A shard member that replayed publish records
	// defers — belief recomputation needs the engine's global statistics,
	// which OpenShardedPersistent re-registers before finishing the
	// publish.
	if m.indexed && !m.deferredDelta {
		m.mu.Lock()
		perr := m.ensureCodecLocked()
		if perr == nil {
			perr = m.publishEpochLocked()
		}
		m.mu.Unlock()
		if perr != nil {
			pool.Close()
			return nil, stats, perr
		}
	}

	w, err := openWAL(walPath, validEnd, opts.WALSync)
	if err != nil {
		pool.Close()
		return nil, stats, err
	}
	m.pool = pool
	m.wal = w
	return m, stats, nil
}

// applyWALRecord re-executes one logged operation during recovery.
// Replay must be idempotent: a crash between a checkpoint's manifest
// commit and the WAL reset leaves records the checkpoint already
// contains, and they must not brick the store. Inserts whose URL the
// checkpoint already holds are skipped (applied=false); feedback
// records in that window re-reinforce, which only nudges already-learnt
// co-occurrence counts — tolerated by design, like the prototype's
// approximate adaptation.
func (m *Mirror) applyWALRecord(r walRecord) (applied bool, err error) {
	switch r.Op {
	case "insert":
		return m.replayInsert(r.URL, r.Annotation, r.Global)
	case "feedback":
		if m.Thes != nil {
			m.Thes.Reinforce(r.Words, r.Concepts, r.Relevant)
		}
		return true, nil
	case "publish":
		return m.replayPublish(r)
	case "merge":
		return m.replayMerge(r)
	}
	return false, fmt.Errorf("core: unknown WAL op %q", r.Op)
}

// replayPublish re-applies one delta publish during recovery, using the
// record's captured content words in place of extraction. Idempotent: a
// delta the checkpoint already covers is skipped. A base mismatch means a
// full rebuild ran after the checkpoint without being logged (full builds
// carry their whole corpus and are deliberately not WAL-logged); the
// delta no longer applies to anything, so the index is dropped loudly-by-
// behavior (queries return ErrNotIndexed until the operator — or
// mirrord's startup path — rebuilds).
func (m *Mirror) replayPublish(r walRecord) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.AnnStats != nil {
		// Self-contained distributed publish: the record carries the
		// global statistics, so replay recomputes beliefs directly
		// instead of deferring to an in-process engine.
		applied, err := m.applyStatsPublishLocked(r)
		if err != nil {
			return false, fmt.Errorf("core: replay publish: %w", err)
		}
		if applied {
			m.epochSeq++ // keep the epoch sequence monotone across the crash
		}
		return applied, nil
	}
	covered := m.coveredLocked()
	if covered >= r.Base+len(r.Docs) {
		return false, nil // checkpoint already contains this publish
	}
	if covered != r.Base || !m.indexed {
		m.dropIndexLocked()
		return false, nil
	}
	urls := make([]string, 0, len(r.Docs))
	words := make(map[string][]string, len(r.Docs))
	for _, d := range r.Docs {
		urls = append(urls, d.URL)
		words[d.URL] = d.Words
	}
	if _, err := m.applyDeltaLocked(urls, words, nil, nil, m.shardCount == 0); err != nil {
		return false, fmt.Errorf("core: replay publish: %w", err)
	}
	m.epochSeq++ // keep the epoch sequence monotone across the crash
	return true, nil
}

// replayMerge re-applies one segment compaction. The SegsBefore guard
// skips merges the checkpoint already reflects (or that no longer apply
// after a deferred sharded recovery); skipping a merge never changes
// query results — compaction is layout-only.
func (m *Mirror) replayMerge(r walRecord) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.indexed || m.deferredDelta {
		return false, nil
	}
	if ir.SegmentCount(m.DB, r.Prefix) != r.SegsBefore {
		return false, nil
	}
	if err := ir.MergeSegments(m.DB, r.Prefix, r.MergeLo, r.MergeHi); err != nil {
		return false, fmt.Errorf("core: replay merge: %w", err)
	}
	return true, nil
}

// dropIndexLocked abandons the content index (internal set, segments,
// epoch); the library itself is untouched. The store reports !Indexed()
// and mirrord's startup path rebuilds by crawling.
func (m *Mirror) dropIndexLocked() {
	_ = m.DB.Reset(InternalSet)
	m.contentTerms = map[bat.OID][]string{}
	m.indexed = false
	m.codebook = nil
	m.epoch.Store(nil)
}

// replayInsert is AddImage minus the raster (footage is never in the
// WAL; the media server owns it, exactly as after Load).
func (m *Mirror) replayInsert(url, annotation string, global *uint64) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.urls[url]; dup {
		return false, nil // already in the checkpoint: idempotent skip
	}
	if _, err := m.DB.Insert(LibrarySet, map[string]any{
		"source": url, "annotation": annotation, "image": url,
	}); err != nil {
		return false, err
	}
	m.order = append(m.order, url)
	m.urls[url] = struct{}{}
	if global != nil {
		m.globalOIDs = append(m.globalOIDs, *global)
	}
	return true, nil
}

// logWAL appends a record when running in persistent mode; a no-op
// otherwise. Callers hold m.mu (write lock), which both keeps WAL order
// equal to apply order and makes append atomic with Checkpoint's
// pool-flush + WAL-reset pair, so no record lands between the two and
// gets silently truncated. A shipping primary also appends the marshaled
// payload to its in-memory replication stream — before the wal==nil
// check, so in-memory primaries (tests) replicate too.
func (m *Mirror) logWAL(r walRecord) error {
	if m.wal == nil && m.ship == nil {
		return nil
	}
	payload, err := json.Marshal(&r)
	if err != nil {
		return fmt.Errorf("core: marshal WAL record: %w", err)
	}
	if m.ship != nil {
		m.ship.log = append(m.ship.log, payload)
	}
	if m.wal == nil {
		return nil
	}
	return m.wal.appendPayload(payload)
}

// reinforceLogged applies one thesaurus reinforcement under the write
// lock and logs it, the mutation path relevance feedback uses so the
// adaptation is atomic with checkpointing.
func (m *Mirror) reinforceLogged(words, concepts []string, relevant bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.follower {
		return ErrFollower
	}
	if m.Thes == nil {
		return fmt.Errorf("core: no thesaurus built")
	}
	m.Thes.Reinforce(words, concepts, relevant)
	if err := m.logWAL(walRecord{Op: "feedback", Words: words, Concepts: concepts, Relevant: relevant}); err != nil {
		// Mirror AddImage's contract: the reinforcement IS applied (and
		// the thesaurus state persists at the next checkpoint); the
		// error only reports reduced durability, so callers do not
		// retry and double-reinforce.
		return fmt.Errorf("core: feedback applied but not WAL-logged (will persist at next checkpoint): %w", err)
	}
	return nil
}

// Persistent reports whether the instance was opened with
// OpenPersistent.
func (m *Mirror) Persistent() bool { return m.pool != nil }

// Checkpoint flushes the database to the store: only BATs dirtied (or
// replaced) since the last checkpoint are rewritten, the manifest is
// atomically swapped, and the WAL — now redundant — is emptied. It is
// an error on a non-persistent instance.
func (m *Mirror) Checkpoint() (storage.CheckpointStats, error) {
	// Full lock: the WAL must not receive records between the pool
	// checkpoint and the WAL reset, or they would be lost on replay.
	// The pool check also happens under the lock so a concurrent
	// ClosePersistent cannot nil it out from under us.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pool == nil {
		return storage.CheckpointStats{}, fmt.Errorf("core: Checkpoint on a non-persistent Mirror (use Save)")
	}
	extra, err := m.persistExtraLocked()
	if err != nil {
		return storage.CheckpointStats{}, err
	}
	stats, err := m.pool.Checkpoint(m.DB.Snapshot(), extra)
	if err != nil {
		return stats, err
	}
	return stats, m.wal.reset()
}

// ClosePersistent checkpoints nothing; it releases the WAL handle and
// unmaps the pool. The Mirror must not be used afterwards (its BATs may
// reference unmapped memory). No-op for non-persistent instances.
func (m *Mirror) ClosePersistent() error {
	if m.pool == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	werr := m.wal.close()
	perr := m.pool.Close()
	m.wal, m.pool = nil, nil
	if werr != nil {
		return werr
	}
	return perr
}

// AddRaster re-attaches footage to an already-ingested URL (after Load),
// enabling the extraction pipeline to run again.
func (m *Mirror) AddRaster(url string, img *media.Image) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.urls[url]; !ok {
		return fmt.Errorf("core: URL %q is not in the library", url)
	}
	m.rasters[url] = img
	return nil
}
