package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Online-ingest soak: concurrent AddImage, ranked queries, Refresh and
// Checkpoint hammer one store (and a 4-shard engine) while the race
// detector watches. The correctness assertion is snapshot isolation
// itself: EVERY query's result must be exactly the result of a one-shot
// build over docs[:c] for SOME covered count c in [batch, n] — a torn
// read (a query observing a half-published segment, a half-refreshed
// shard vector, or a partially recomputed belief column) produces a
// ranking matching no prefix and fails loudly.

const (
	soakDocs  = 32
	soakBatch = 12
)

var soakQueries = []string{"harbor gull", "tide pier", "kelp", "lantern mist salt"}

// soakExpected precomputes, for every prefix length c, the reference
// rankings a one-shot build over docs[:c] yields.
func soakExpected(t *testing.T, urls, anns []string) map[int]map[string][]Hit {
	t.Helper()
	out := make(map[int]map[string][]Hit)
	for c := soakBatch; c <= len(urls); c++ {
		ref := oneShotStub(t, urls[:c], anns[:c])
		per := make(map[string][]Hit, len(soakQueries))
		for _, q := range soakQueries {
			hits, err := ref.QueryAnnotations(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			per[q] = hits
		}
		out[c] = per
	}
	return out
}

// matchesSomePrefix reports whether hits equals expected[c][q] for any c.
func matchesSomePrefix(expected map[int]map[string][]Hit, q string, hits []Hit) (int, bool) {
	for c, per := range expected {
		if hitsEqual(per[q], hits) {
			return c, true
		}
	}
	return 0, false
}

func runSoak(t *testing.T, ingest func(i int) error, refresh func() error, checkpoint func() error,
	query func(q string, k int) ([]Hit, error), current func() bool, expected map[int]map[string][]Hit) {
	t.Helper()
	var (
		wg         sync.WaitGroup
		done       atomic.Bool
		ingestDone atomic.Bool
		firstErr   atomic.Value
	)
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err) //nolint:errcheck
			done.Store(true)
		}
	}

	// Ingester: one document at a time, paced so refreshes interleave.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ingestDone.Store(true)
		for i := soakBatch; i < soakDocs && !done.Load(); i++ {
			if err := ingest(i); err != nil {
				fail(fmt.Errorf("ingest %d: %w", i, err))
				return
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	// Refresher: the background indexing thread; loops until everything
	// ingested is covered.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if err := refresh(); err != nil {
				fail(fmt.Errorf("refresh: %w", err))
				return
			}
			// Only a post-ingestion catch-up ends the soak: Current() is
			// momentarily true whenever the refresher outruns the ingester.
			if ingestDone.Load() && current() {
				done.Store(true)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Checkpointer: interleaves incremental checkpoints with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if err := checkpoint(); err != nil {
				fail(fmt.Errorf("checkpoint: %w", err))
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Queriers: every result must be exact for some published prefix.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !done.Load() {
				q := soakQueries[w%len(soakQueries)]
				hits, err := query(q, 8)
				if err != nil {
					fail(fmt.Errorf("query %q: %w", q, err))
					return
				}
				if _, ok := matchesSomePrefix(expected, q, hits); !ok {
					fail(fmt.Errorf("torn read: %q returned a ranking matching no published prefix: %v", q, hits))
					return
				}
			}
		}(w)
	}

	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	// Quiesced: the final state must be the full corpus, exactly.
	if !current() {
		if err := refresh(); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range soakQueries {
		hits, err := query(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(expected[soakDocs][q], hits) {
			t.Fatalf("quiesced ranking for %q is not the full-corpus one-shot result:\n  want %v\n  got  %v",
				q, expected[soakDocs][q], hits)
		}
	}
}

// TestSoakOnlineIngestSingleStore soaks a persistent single store.
func TestSoakOnlineIngestSingleStore(t *testing.T) {
	urls, anns := refreshCorpus(soakDocs, 23)
	expected := soakExpected(t, urls, anns)
	m := openStubPersistent(t, t.TempDir(), urls, anns, soakBatch)
	defer m.ClosePersistent()

	runSoak(t,
		func(i int) error { return m.AddImage(urls[i], anns[i], nil) },
		func() error {
			m.buildMu.Lock()
			defer m.buildMu.Unlock()
			_, err := m.refreshWith(stubPipeline{})
			return err
		},
		func() error { _, err := m.Checkpoint(); return err },
		m.QueryAnnotations,
		m.Current,
		expected,
	)
}

// TestSoakOnlineIngestSharded soaks a persistent 4-shard engine; the
// exactness oracle is the same single-store prefix table (the sharded
// differential guarantee).
func TestSoakOnlineIngestSharded(t *testing.T) {
	urls, anns := refreshCorpus(soakDocs, 29)
	expected := soakExpected(t, urls, anns)
	e, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.ClosePersistent()
	for i := 0; i < soakBatch; i++ {
		if err := e.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}

	runSoak(t,
		func(i int) error { return e.AddImage(urls[i], anns[i], nil) },
		func() error {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			_, err := e.refreshWith(stubPipeline{})
			return err
		},
		func() error { _, err := e.Checkpoint(); return err },
		e.QueryAnnotations,
		e.Current,
		expected,
	)
}
