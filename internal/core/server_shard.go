package core

// Shard-facing RPCs: the wire surface internal/dist's router and follower
// daemons drive. These ride the same "Mirror" service name as the client
// RPCs — a shard daemon IS a Mirror DBMS server, just one whose index
// lifecycle is driven remotely — so the dictionary, the transport and the
// per-call gate are shared. Every method requires the served Retriever to
// be a single *Mirror store; a router never serves these (routing through
// two router layers is a deployment error, refused loudly).

import (
	"bytes"
	"fmt"

	"mirror/internal/dict"
	"mirror/internal/ir"
	"mirror/internal/media"
)

// mirror unwraps the served Retriever as a single store; shard RPCs are
// meaningless against another router or an in-process sharded engine.
func (s *Service) mirror() (*Mirror, error) {
	m, ok := s.m.(*Mirror)
	if !ok {
		return nil, fmt.Errorf("core: shard RPC on a %T (shard daemons serve single stores)", s.m)
	}
	return m, nil
}

// ShardQueryArgs is one scatter leg of a router query, pinned to the
// epoch published under Tag so every shard answers from the same round.
type ShardQueryArgs struct {
	Kind       string    // "ann" | "content" | "moa" | "wsum"
	Text       string    // query text ("ann") or Moa source ("moa")
	Terms      []string  // cluster words ("content", "wsum") or query terms ("moa")
	Weights    []float64 // per-term weights ("wsum")
	K          int       // ranked top-k request; <= 0 = exhaustive
	Tag        uint64    // publish tag the reply must be served at
	ThetaFloor float64   // router's shared pruning threshold at send time
	ScanID     uint64    // non-zero: accept RaiseTheta pushes mid-scan under this id
}

// ShardQueryReply carries one shard's leg of the scatter: rows already
// remapped to engine-global OIDs and (for unranked legs) already cut to
// the global top k, plus the epoch stamp of the pinned snapshot and the
// pruning threshold reached — the router folds Theta into its shared
// rising threshold for the remaining legs.
type ShardQueryReply struct {
	OIDs    []uint64
	URLs    []string  // "ann"/"content" legs only
	Scores  []float64 // belief scores; Moa legs: float64 values (see Numeric)
	Values  []string  // "moa" legs: rendered row values
	Numeric bool      // every Moa row value was a float64 (Scores authoritative)
	Floats  []bool    // "moa" legs: per-row, Scores[i] is the authoritative float64 value
	Ranked  bool      // rows arrive ranked (pruned top-k or shard-side cut)
	Theta   float64   // pruning threshold after this leg (K > 0 only)
	Epoch   int64
	Docs    int
}

// ShardQuery evaluates one scatter leg at the epoch carrying args.Tag.
func (s *Service) ShardQuery(args ShardQueryArgs, reply *ShardQueryReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	defer s.acquire()()
	rep, err := m.shardTopK(&args)
	if err != nil {
		return err
	}
	*reply = *rep
	return nil
}

// RaiseThetaArgs streams one router-side threshold raise into a shard's
// in-flight scan (the leg that carried ScanID in its ShardQueryArgs).
type RaiseThetaArgs struct {
	ScanID uint64
	Theta  float64
}

// RaiseTheta lifts the pruning threshold of the scan registered under
// ScanID. Unknown ids are a benign no-op: the scan already drained, or
// the leg ran on a sibling replica (the router broadcasts to the whole
// replica set). The call deliberately bypasses the per-call gate — it
// must land WHILE the query it accelerates occupies a slot.
func (s *Service) RaiseTheta(args RaiseThetaArgs, _ *dict.Empty) error {
	if _, err := s.mirror(); err != nil {
		return err
	}
	raiseScanTheta(args.ScanID, args.Theta)
	return nil
}

// ShardIngestArgs routes one document to its home shard. Global is the
// engine-wide OID the router assigned (ingestion position across the
// whole collection) — the shard persists the local→global mapping.
type ShardIngestArgs struct {
	URL        string
	Annotation string
	PPM        []byte // raster as PPM bytes; empty = annotation-only document
	Global     uint64
}

// ShardIngestReply reports the shard-local library state after the insert.
type ShardIngestReply struct {
	Size    int // documents in this shard's library
	Pending int // shard documents not yet covered by its serving epoch
}

// ShardIngest ingests one router-assigned document into a shard member,
// WAL-logged (and replication-shipped) like any local insert.
func (s *Service) ShardIngest(args ShardIngestArgs, reply *ShardIngestReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	var img *media.Image
	if len(args.PPM) > 0 {
		img, err = media.DecodePPM(bytes.NewReader(args.PPM))
		if err != nil {
			return fmt.Errorf("core: decode PPM for %s: %v", args.URL, err)
		}
	}
	if err := m.addImageShard(args.URL, args.Annotation, img, args.Global); err != nil {
		return err
	}
	reply.Size, reply.Pending = m.Size(), m.Pending()
	return nil
}

// ShardPublishArgs is one shard's slice of a router publish round: the
// delta documents with their extracted content words, the engine-wide
// collection statistics every shard must score under, the frozen codebook
// (full builds) and the round's tag.
type ShardPublishArgs struct {
	URLs     []string
	Words    map[string][]string
	AnnStats *ir.GlobalStats
	ImgStats *ir.GlobalStats
	Codebook *Codebook
	Full     bool
	Tag      uint64
}

// ShardPublishReply reports the publish outcome on this shard.
type ShardPublishReply struct {
	NewDocs int   // documents newly covered on this shard
	Covered int   // shard documents covered after the publish
	Epoch   int64 // shard-local epoch sequence published
	Docs    int   // documents the published epoch covers
}

// ShardPublish applies one slice of a router publish round.
func (s *Service) ShardPublish(args ShardPublishArgs, reply *ShardPublishReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	st, err := m.ApplyShardPublish(args.URLs, args.Words, args.AnnStats, args.ImgStats, args.Codebook, args.Full, args.Tag)
	if err != nil {
		return err
	}
	reply.NewDocs, reply.Epoch, reply.Docs = st.NewDocs, st.Epoch, st.Docs
	reply.Covered = m.covered()
	return nil
}

// ShardStateReply is the router's probe of a shard daemon: coverage (to
// skip already-applied publish slices on retry), the served tag/epoch,
// role, and the replication stream position (followers).
type ShardStateReply struct {
	Size     int
	Covered  int
	Indexed  bool
	Tag      uint64 // publish tag of the serving epoch
	Epoch    int64
	Docs     int
	Follower bool
	Nonce    uint64 // replication: primary incarnation the store last applied
	Pos      uint64 // replication: stream position durably applied
}

// ShardState reports the shard's serving and replication state.
func (s *Service) ShardState(_ dict.Empty, reply *ShardStateReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	reply.Size = m.Size()
	reply.Covered = m.covered()
	reply.Indexed = m.Indexed()
	reply.Follower = m.IsFollower()
	if ep := m.currentEpoch(); ep != nil {
		reply.Tag, reply.Epoch, reply.Docs = ep.Tag, ep.Seq, ep.Docs
	}
	reply.Nonce, reply.Pos = m.ReplState()
	return nil
}

// WALShipArgs asks a primary for its replication stream from Since, as
// known under incarnation Nonce (0,0 on a fresh follower — which forces
// the resync path that establishes both).
type WALShipArgs struct {
	Nonce uint64
	Since uint64
}

// WALShipReply carries a bounded batch of stream records. Resync tells
// the follower its position is unservable (primary restarted, or the
// position lies beyond the stream) and it must pull a full ShardSync.
type WALShipReply struct {
	Recs   [][]byte
	Nonce  uint64
	Next   uint64 // stream position after Recs; pass as the next Since
	Resync bool
}

// WALShip serves the replication stream suffix to a follower.
func (s *Service) WALShip(args WALShipArgs, reply *WALShipReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	recs, nonce, next, resync, err := m.shipSince(args.Nonce, args.Since)
	if err != nil {
		return err
	}
	reply.Recs, reply.Nonce, reply.Next, reply.Resync = recs, nonce, next, resync
	return nil
}

// ShardSyncReply is a full resync stream synthesised from the primary's
// current state; applying it on any follower state converges. Nonce/Pos
// are where incremental WALShip pulls resume afterwards.
type ShardSyncReply struct {
	Recs  [][]byte
	Nonce uint64
	Pos   uint64
}

// ShardSync serves a full resync stream to a diverged or fresh follower.
func (s *Service) ShardSync(_ dict.Empty, reply *ShardSyncReply) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	recs, nonce, pos, err := m.shipGenesis()
	if err != nil {
		return err
	}
	reply.Recs, reply.Nonce, reply.Pos = recs, nonce, pos
	return nil
}

// ReinforceArgs applies one thesaurus reinforcement (the router routes
// session feedback to shard 0's primary, mirroring the in-process
// engine's routing).
type ReinforceArgs struct {
	Words    []string
	Concepts []string
	Relevant bool
}

// Reinforce applies one WAL-logged thesaurus reinforcement.
func (s *Service) Reinforce(args ReinforceArgs, _ *dict.Empty) error {
	m, err := s.mirror()
	if err != nil {
		return err
	}
	return m.reinforceLogged(args.Words, args.Concepts, args.Relevant)
}

// TopologyReply describes the serving topology behind this server.
type TopologyReply struct{ Desc string }

// Topology reports the served Retriever's place in the topology (moash
// \topology against a remote server).
func (s *Service) Topology(_ dict.Empty, reply *TopologyReply) error {
	if t, ok := s.m.(interface{ Topology() string }); ok {
		reply.Desc = t.Topology()
	} else {
		reply.Desc = fmt.Sprintf("%T", s.m)
	}
	return nil
}

// ---- typed client surface (internal/dist) ----

// ShardQuery runs one scatter leg against a shard daemon.
func (c *Client) ShardQuery(args ShardQueryArgs) (*ShardQueryReply, error) {
	var reply ShardQueryReply
	err := c.call("Mirror.ShardQuery", args, &reply)
	return &reply, wireErr(err)
}

// RaiseTheta streams a threshold raise into an in-flight scatter leg.
func (c *Client) RaiseTheta(scanID uint64, theta float64) error {
	var reply dict.Empty
	err := c.call("Mirror.RaiseTheta", RaiseThetaArgs{ScanID: scanID, Theta: theta}, &reply)
	return wireErr(err)
}

// ShardIngest routes one document to its home shard.
func (c *Client) ShardIngest(url, annotation string, ppm []byte, global uint64) (*ShardIngestReply, error) {
	var reply ShardIngestReply
	err := c.call("Mirror.ShardIngest", ShardIngestArgs{URL: url, Annotation: annotation, PPM: ppm, Global: global}, &reply)
	return &reply, wireErr(err)
}

// ShardPublish applies one slice of a publish round on a shard daemon.
func (c *Client) ShardPublish(args ShardPublishArgs) (*ShardPublishReply, error) {
	var reply ShardPublishReply
	err := c.call("Mirror.ShardPublish", args, &reply)
	return &reply, wireErr(err)
}

// ShardState probes a shard daemon's serving and replication state.
func (c *Client) ShardState() (*ShardStateReply, error) {
	var reply ShardStateReply
	err := c.call("Mirror.ShardState", dict.Empty{}, &reply)
	return &reply, wireErr(err)
}

// WALShip pulls a batch of replication stream records from a primary.
func (c *Client) WALShip(nonce, since uint64) (*WALShipReply, error) {
	var reply WALShipReply
	err := c.call("Mirror.WALShip", WALShipArgs{Nonce: nonce, Since: since}, &reply)
	return &reply, wireErr(err)
}

// ShardSync pulls a full resync stream from a primary.
func (c *Client) ShardSync() (*ShardSyncReply, error) {
	var reply ShardSyncReply
	err := c.call("Mirror.ShardSync", dict.Empty{}, &reply)
	return &reply, wireErr(err)
}

// Reinforce applies one thesaurus reinforcement on the remote store.
func (c *Client) Reinforce(words, concepts []string, relevant bool) error {
	var reply dict.Empty
	err := c.call("Mirror.Reinforce", ReinforceArgs{Words: words, Concepts: concepts, Relevant: relevant}, &reply)
	return wireErr(err)
}

// Topology asks the remote server for its serving topology.
func (c *Client) Topology() (string, error) {
	var reply TopologyReply
	err := c.call("Mirror.Topology", dict.Empty{}, &reply)
	return reply.Desc, wireErr(err)
}
