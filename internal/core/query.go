package core

import (
	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/moa"
	"mirror/internal/thesaurus"
)

// annotationQuery is the paper's Section 3 ranking expression over the
// internal schema's text CONTREP.
const annotationQuery = `
	map[sum(THIS)](
		map[getBL(THIS.annotation, query, stats)]( ImageLibraryInternal ));`

// contentQuery is the Section 5.2 expression: rank by image content, where
// the query is a set of cluster words selected via the thesaurus.
const contentQuery = `
	map[sum(THIS)](
		map[getBL(THIS.image, query, stats)]( ImageLibraryInternal ));`

// Every ranked-retrieval entry point pins the current index epoch with
// one atomic load and evaluates entirely against that snapshot: queries
// never block on ingest/refresh/checkpoint activity and never observe a
// partially published segment. Before the first publish they fail with
// ErrNotIndexed.

// QueryAnnotations ranks the library against a free-text query using the
// textual annotations (the Section 3 scenario). The text passes through the
// same analyzer as the indexed annotations. k > 0 is pushed down into the
// query plan (pruned top-k retrieval); k <= 0 returns the full ranking.
func (m *Mirror) QueryAnnotations(text string, k int) ([]Hit, error) {
	hits, _, err := m.QueryAnnotationsStamped(text, k)
	return hits, err
}

// QueryAnnotationsStamped is QueryAnnotations plus the stamp of the epoch
// the answer was served from — the same pinned epoch, so the stamp can
// never mislabel the answer under concurrent publishes.
func (m *Mirror) QueryAnnotationsStamped(text string, k int) ([]Hit, EpochStamp, error) {
	ep, err := m.requireEpoch()
	if err != nil {
		return nil, EpochStamp{}, err
	}
	c := m.cache.Load()
	if hits, ok := c.get(ep.Seq, cacheAnnotations, k, text, nil); ok {
		return hits, ep.stamp(), nil
	}
	tm := m.thetaMemo.Load()
	hits, err := ep.queryAnnotations(text, k, seededTheta(tm, ep.Seq, cacheAnnotations, k, text, nil))
	if err == nil {
		c.put(ep.Seq, cacheAnnotations, k, text, nil, hits)
		memoTheta(tm, ep.Seq, cacheAnnotations, k, text, nil, hits)
	}
	return hits, ep.stamp(), err
}

// QueryContent ranks the library by image content given cluster words
// (normally chosen through the thesaurus). k behaves as in
// QueryAnnotations.
func (m *Mirror) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	ep, err := m.requireEpoch()
	if err != nil {
		return nil, err
	}
	c := m.cache.Load()
	if hits, ok := c.get(ep.Seq, cacheContent, k, "", clusterWords); ok {
		return hits, nil
	}
	tm := m.thetaMemo.Load()
	hits, err := ep.queryContent(clusterWords, k, seededTheta(tm, ep.Seq, cacheContent, k, "", clusterWords))
	if err == nil {
		c.put(ep.Seq, cacheContent, k, "", clusterWords, hits)
		memoTheta(tm, ep.Seq, cacheContent, k, "", clusterWords, hits)
	}
	return hits, err
}

// expandConcepts is the one query-expansion implementation behind every
// ExpandQuery surface (live store, pinned epoch, sharded engine and its
// epochs): the topK concepts the thesaurus associates with the analysed
// text. nil thesaurus (pre-index) expands to nothing.
func expandConcepts(thes *thesaurus.Thesaurus, text string, topK int) []string {
	if thes == nil {
		return nil
	}
	assocs := thes.Associate(ir.Analyze(text), topK)
	out := make([]string, len(assocs))
	for i, a := range assocs {
		out[i] = a.Concept
	}
	return out
}

// ExpandQuery maps free text to the topK associated content clusters via
// the thesaurus (the demo's query formulation step).
func (m *Mirror) ExpandQuery(text string, topK int) []string {
	return expandConcepts(m.Thesaurus(), text, topK)
}

// QueryDualCoding is the full Section 5.2 retrieval: the text query ranks
// annotations directly AND, through the thesaurus, the image content
// representation; the two belief sources are combined with the inference
// network's #sum operator. Both evidence sources read ONE pinned epoch.
func (m *Mirror) QueryDualCoding(text string, k int) ([]Hit, error) {
	hits, _, err := m.QueryDualCodingStamped(text, k)
	return hits, err
}

// QueryDualCodingStamped is QueryDualCoding plus the stamp of the pinned
// epoch both evidence sources read.
func (m *Mirror) QueryDualCodingStamped(text string, k int) ([]Hit, EpochStamp, error) {
	ep, err := m.requireEpoch()
	if err != nil {
		return nil, EpochStamp{}, err
	}
	c := m.cache.Load()
	if hits, ok := c.get(ep.Seq, cacheDual, k, text, nil); ok {
		return hits, ep.stamp(), nil
	}
	hits, err := queryDualCoding(ep, text, k)
	if err == nil {
		c.put(ep.Seq, cacheDual, k, text, nil, hits)
	}
	return hits, ep.stamp(), err
}

// dualCodingSite is the retrieval surface dual coding combines evidence
// over; a pinned IndexEpoch and the ShardedEngine both provide it (the
// sharded engine's hits already carry global OIDs, so the #sum
// combination is shard-oblivious).
type dualCodingSite interface {
	urlResolver
	QueryAnnotations(text string, k int) ([]Hit, error)
	QueryContent(clusterWords []string, k int) ([]Hit, error)
	ExpandQuery(text string, topK int) []string
}

// queryDualCoding implements QueryDualCoding over any retrieval site.
// Every borrowed Scores map is released on every path, including the
// error returns (poolcheck-enforced).
func queryDualCoding(site dualCodingSite, text string, k int) ([]Hit, error) {
	textHits, err := site.QueryAnnotations(text, 0)
	if err != nil {
		return nil, err
	}
	ts := hitsToScores(textHits)
	clusterWords := site.ExpandQuery(text, 5)
	var contentHits []Hit
	if len(clusterWords) > 0 {
		contentHits, err = site.QueryContent(clusterWords, 0)
		if err != nil {
			ir.ReleaseScores(ts)
			return nil, err
		}
	}
	cs := hitsToScores(contentHits)
	nText := float64(len(ir.Analyze(text)))
	nContent := float64(len(clusterWords))
	combined, err := ir.CombineSum(
		[]ir.Scores{ts, cs},
		[]float64{nText * ir.DefaultBelief, nContent * ir.DefaultBelief},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		ir.ReleaseScores(combined)
		return nil, err
	}
	hits := scoresToHits(site, combined, k)
	ir.ReleaseScores(combined)
	return hits, nil
}

// scoresToHits ranks a combined score map and resolves URLs; k > 0 cuts
// with the bounded partial selection. The ranking scratch is pooled;
// RankInto may grow the backing array, so the borrow is threaded through
// the same variable.
func scoresToHits(r urlResolver, s ir.Scores, k int) []Hit {
	ranked := borrowRanked()
	ranked = ir.RankInto(ranked, s, k)
	hits := make([]Hit, 0, len(ranked))
	for _, rk := range ranked {
		hits = append(hits, Hit{OID: bat.OID(rk.Doc), URL: r.urlOf(bat.OID(rk.Doc)), Score: rk.Score})
	}
	releaseRanked(ranked)
	return hits
}

// WeightedContentScores scores the internal set's image CONTREP with
// per-term weights via the wsum physical operator; this is the primitive
// the relevance feedback loop uses. The returned map is pooled scratch:
// the caller owns it and releases it with ir.ReleaseScores when done.
func (m *Mirror) WeightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	ep, err := m.requireEpoch()
	if err != nil {
		return nil, err
	}
	return ep.weightedContentScores(terms, weights)
}

// requireIndex rejects queries before any index epoch has been published.
func (m *Mirror) requireIndex() error {
	if m.currentEpoch() == nil {
		return ErrNotIndexed
	}
	return nil
}

// hitsToScores converts hits into a pooled Scores map; callers release it
// with ir.ReleaseScores when done.
func hitsToScores(hits []Hit) ir.Scores {
	out := ir.NewScores()
	for _, h := range hits {
		out[uint64(h.OID)] = h.Score
	}
	return out
}

// Query exposes raw Moa queries (used by moash and the network server).
// Parameters: the optional query terms bind the `query`/`stats` parameters.
func (m *Mirror) Query(src string, queryTerms []string) (*moa.Result, error) {
	return m.QueryTopK(src, queryTerms, 0)
}

// QueryTopK is Query with a ranked top-k request pushed into the plan
// optimizer: when the plan is a retrieval pruning can serve, only the k
// best rows come back, already ranked; otherwise the full exhaustive
// result is returned (the caller cuts). k <= 0 means no cut.
//
// Indexed stores evaluate against the serving epoch (snapshot-isolated);
// a store that never published an index evaluates against the live
// database — the pre-index browsing moash supports — which is safe only
// without concurrent ingest.
func (m *Mirror) QueryTopK(src string, queryTerms []string, k int) (*moa.Result, error) {
	res, _, err := m.QueryTopKStamped(src, queryTerms, k)
	return res, err
}

// QueryTopKStamped is QueryTopK plus the stamp of the epoch the plan ran
// against; the live-database fallback (no epoch published) returns the
// zero stamp.
func (m *Mirror) QueryTopKStamped(src string, queryTerms []string, k int) (*moa.Result, EpochStamp, error) {
	var params map[string]moa.Param
	if queryTerms != nil {
		params = ir.QueryParams(queryTerms)
	}
	if ep := m.currentEpoch(); ep != nil {
		res, err := ep.queryTopK(src, params, k, nil)
		return res, ep.stamp(), err
	}
	eng := &moa.Engine{DB: m.Eng.DB, Opts: m.Eng.Opts}
	if k > 0 {
		eng.Opts.TopK = k
	}
	res, err := eng.Query(src, params)
	return res, EpochStamp{}, err
}
