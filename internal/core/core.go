// Package core is the Mirror DBMS: the integrated multimedia database of
// the paper. It wires the Moa logical algebra (over the BAT physical
// layer), the CONTREP inference-network retrieval structure, the feature /
// clustering / thesaurus daemons and the storage layer into the system the
// demo presents: insert images and annotations, run the extraction
// pipeline, and query by text, by content, or by both (dual coding), with
// relevance feedback.
//
// Persistence comes in two modes (see ARCHITECTURE.md §"On-disk format"):
//
//   - Save/Load write and read a whole-database snapshot through the
//     BAT buffer pool in internal/storage; the loaded instance owns
//     private memory and keeps no file handles.
//   - OpenPersistent keeps the pool open for the life of the process:
//     BATs load zero-copy (mmap) where the platform allows, every
//     insert and relevance-feedback event is appended to a write-ahead
//     log, and Checkpoint flushes only dirty BATs and truncates the
//     WAL. Restart recovery = last checkpoint + WAL replay. cmd/mirrord
//     exposes this mode through its -store flag and a Checkpoint RPC.
//
// Concurrency: one RWMutex guards the instance's mutable metadata;
// mutations take the write lock and log to the WAL before releasing it,
// so WAL order equals apply order. Query paths are lock-free in a
// stronger sense since the online-indexing rework: every ranked query
// pins the current IndexEpoch — an immutable snapshot database of frozen
// BAT views — with a single atomic load (epoch.go), so inserts, delta
// refreshes (Refresh), segment merges and checkpoints never block a
// query and can never be observed half-applied. The thesaurus, which
// relevance feedback and delta publishes mutate between checkpoints,
// synchronises internally.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// Set names of the demo schema (Section 5.2 of the paper).
const (
	LibrarySet  = "ImageLibrary"
	InternalSet = "ImageLibraryInternal"
)

// librarySchema is the application programmer's schema from the paper...
const librarySchema = `
define ImageLibrary as SET<TUPLE<
	Atomic<URL>: source,
	Atomic<Text>: annotation,
	Atomic<Image>: image
>>;`

// internalSchema ...and the internal schema the daemons derive from it.
const internalSchema = `
define ImageLibraryInternal as SET<TUPLE<
	Atomic<URL>: source,
	CONTREP<Text>: annotation,
	CONTREP<Image>: image
>>;`

// Mirror is one Mirror DBMS instance.
type Mirror struct {
	mu  sync.RWMutex
	DB  *moa.Database
	Eng *moa.Engine

	// raster store: the demo keeps decoded images keyed by URL so the
	// extraction daemons can reach them (the media server owns the
	// authoritative copies).
	rasters map[string]*media.Image
	order   []string            // ingestion order of URLs
	urls    map[string]struct{} // set of order, for O(1) duplicate checks

	// content metadata built by the pipeline
	Thes         *thesaurus.Thesaurus
	contentTerms map[bat.OID][]string // internal-set OID → cluster words
	indexed      bool                 // an index has been published (epoch exists)

	// snapshot-isolated serving: queries pin the current epoch with one
	// atomic load and never touch the live (mutable) database. buildMu
	// serialises index construction — full builds, delta refreshes and
	// segment merges — without ever blocking queries; lock order is
	// buildMu before mu.
	epoch    atomic.Pointer[IndexEpoch]
	epochSeq int64 // last published epoch number (persisted)
	buildMu  sync.Mutex

	// cache is the optional epoch-keyed query result cache (SetResultCache);
	// nil (the default) disables caching. Entries are keyed on the epoch
	// sequence number, so every publish invalidates them for free.
	cache atomic.Pointer[resultCache]

	// thetaMemo memoises each completed pruned query's terminal k-th
	// score, keyed on the epoch sequence number, so a repeat of the same
	// (epoch, surface, k, query) opens its scan with the threshold
	// already at terminal height (SetThetaMemo; on by default).
	thetaMemo atomic.Pointer[ThetaMemo]

	// codebook freezes the feature clustering of the last full build so
	// delta refreshes can assign new documents to the existing clusters
	// (full re-clustering stays an explicit offline BuildContentIndex).
	// Persisted in the store manifest; nil after a distributed build
	// whose daemons did not return models.
	codebook *Codebook

	// Deferred shard recovery: a shard member replays WAL publish records
	// structurally (inserts only) because belief recomputation needs the
	// engine's global statistics; the engine finishes the publish once
	// every shard is open. deferredThes stashes the replayed documents'
	// thesaurus contribution for the engine to fold into the shared
	// instance.
	deferredDelta bool
	deferredThes  []thesaurus.Doc

	// persistent mode (OpenPersistent): the BAT buffer pool backing the
	// loaded BATs and the write-ahead log capturing inserts/feedback
	// between checkpoints. Both nil for in-memory instances.
	pool *storage.Pool
	wal  *wal

	// shard identity (ShardedEngine members only; zero for standalone
	// stores). globalOIDs[i] is the engine-wide OID of the i-th locally
	// ingested document — the identity under which this shard's hits
	// merge into the global ranking. Persisted in the store manifest's
	// meta (checkpointed docs) and in each WAL insert record (tail docs),
	// so recovery restores the global mapping shard-locally.
	shardIndex int
	shardCount int
	globalOIDs []uint64

	// Distributed serving (internal/dist). A networked shard primary
	// ships its WAL records to followers (ship != nil); a follower
	// rejects public mutations and only applies shipped records. The
	// epoch ring retains recent published epochs so a router can pin
	// queries to a consistent cross-shard epoch vector by tag; the last
	// published global statistics are cached so a primary can synthesise
	// a full resync stream for a blank or diverged follower.
	follower   bool
	epochHistN int // >0 retains a ring of recent epochs
	epochHist  []*IndexEpoch
	ship       *shipState // primary: marshaled WAL payloads shipped to followers
	replPos    uint64     // follower: replication stream position applied
	replNonce  uint64     // follower: primary incarnation replPos counts under
	// lastPublishTag is the router-assigned tag of the last applied
	// shard publish; publishEpochLocked stamps new epochs with it.
	// lastAnnStats/lastImgStats cache the global statistics of that
	// publish (needed to synthesise resync streams after a restart).
	lastPublishTag             uint64
	lastAnnStats, lastImgStats *ir.GlobalStats
}

// New creates an empty Mirror DBMS with the demo schema defined.
func New() (*Mirror, error) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(librarySchema); err != nil {
		return nil, err
	}
	if err := db.DefineFromSource(internalSchema); err != nil {
		return nil, err
	}
	m := &Mirror{
		DB:           db,
		Eng:          moa.NewEngine(db),
		rasters:      map[string]*media.Image{},
		urls:         map[string]struct{}{},
		contentTerms: map[bat.OID][]string{},
	}
	m.thetaMemo.Store(newThetaMemo(defaultThetaMemoEntries))
	return m, nil
}

// AddImage ingests one library item: its URL, its (possibly empty)
// annotation, and the raster. Call BuildContentIndex afterwards to derive
// the internal representation. In persistent mode the insert is logged
// to the WAL so it survives a crash before the next checkpoint.
func (m *Mirror) AddImage(url, annotation string, img *media.Image) error {
	return m.addImage(url, annotation, img, nil)
}

// addImageShard is AddImage for a ShardedEngine member: the engine assigns
// the document's global OID (its position in the engine-wide ingestion
// order), and the shard persists it alongside the local insert.
func (m *Mirror) addImageShard(url, annotation string, img *media.Image, global uint64) error {
	return m.addImage(url, annotation, img, &global)
}

func (m *Mirror) addImage(url, annotation string, img *media.Image, global *uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.follower {
		return ErrFollower
	}
	if _, dup := m.urls[url]; dup {
		return fmt.Errorf("core: image %q already in library", url)
	}
	if _, err := m.DB.Insert(LibrarySet, map[string]any{
		"source": url, "annotation": annotation, "image": url,
	}); err != nil {
		return err
	}
	// Commit the in-memory state fully before logging, so a WAL failure
	// never leaves a half-applied insert: the item is in the library
	// either way, and the returned error then only reports reduced
	// durability (the next checkpoint still persists it).
	m.rasters[url] = img
	m.order = append(m.order, url)
	m.urls[url] = struct{}{}
	if global != nil {
		m.globalOIDs = append(m.globalOIDs, *global)
	}
	// The published epoch keeps serving: the new document becomes
	// retrievable at the next Refresh (incremental) or BuildContentIndex
	// (full re-clustering). Queries never see a half-indexed document.
	if err := m.logWAL(walRecord{Op: "insert", URL: url, Annotation: annotation, Global: global}); err != nil {
		return fmt.Errorf("core: %q ingested but not WAL-logged (will persist at next checkpoint): %w", url, err)
	}
	return nil
}

// Size reports the number of library items.
func (m *Mirror) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.order)
}

// URLs returns the item URLs in ingestion order.
func (m *Mirror) URLs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// Raster returns the stored raster for a URL.
func (m *Mirror) Raster(url string) (*media.Image, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	img, ok := m.rasters[url]
	return img, ok
}

// ContentTerms returns the cluster words of an internal-set element.
func (m *Mirror) ContentTerms(oid bat.OID) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.contentTerms[oid]...)
}

// Indexed reports whether a content index is being served (some epoch has
// been published). Documents added since the last Refresh are pending —
// see Current — but do not un-index the store: queries keep serving the
// latest published snapshot.
func (m *Mirror) Indexed() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexed
}

// Current reports whether the serving epoch covers every ingested
// document (no inserts pending a Refresh).
func (m *Mirror) Current() bool {
	ep := m.currentEpoch()
	m.mu.RLock()
	defer m.mu.RUnlock()
	return ep != nil && ep.Docs == len(m.order)
}

// Pending reports how many ingested documents the serving epoch does not
// cover yet.
func (m *Mirror) Pending() int {
	ep := m.currentEpoch()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if ep == nil {
		return len(m.order)
	}
	return len(m.order) - ep.Docs
}

// annotationOf reads a document's stored annotation under the lock (safe
// against concurrent inserts appending to the library columns).
func (m *Mirror) annotationOf(oid bat.OID) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.DB.BAT(LibrarySet + "_annotation")
	if !ok {
		return ""
	}
	v, _ := b.Find(oid)
	s, _ := v.(string)
	return s
}

// SchemaSource returns the DDL of the served database.
func (m *Mirror) SchemaSource() string { return m.DB.SchemaSource() }

// Thesaurus returns the association thesaurus (nil before indexing).
func (m *Mirror) Thesaurus() *thesaurus.Thesaurus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.Thes
}

// setThesaurus installs a (possibly shared) thesaurus; the sharded engine
// uses it to point every shard at the one global instance.
func (m *Mirror) setThesaurus(t *thesaurus.Thesaurus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Thes = t
}

// globalOIDsSnapshot returns the local→global OID mapping of a shard
// member. Entries below the returned length are immutable; concurrent
// appends only extend it.
func (m *Mirror) globalOIDsSnapshot() []uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.globalOIDs
}

// Hit is one ranked retrieval result.
type Hit struct {
	OID   bat.OID
	URL   string
	Score float64
}

// urlResolver maps a document OID to its source URL; Mirror resolves
// shard-local OIDs through the internal set, ShardedEngine global OIDs
// through its ingestion order.
type urlResolver interface {
	urlOf(oid bat.OID) string
}

// urlOf resolves an internal-set OID to its source URL against the live
// database, under the read lock (the epoch-pinned query paths resolve
// through their snapshot instead).
func (m *Mirror) urlOf(oid bat.OID) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.DB.BAT(InternalSet + "_source")
	if !ok {
		return ""
	}
	v, ok := b.Find(oid)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// SetStoreCodec selects the postings segment layout ("block" or "raw";
// "" = block) used by newly derived, merged or rewritten segments.
// Existing segments convert at the next refresh/publish (persistent
// opens convert during recovery instead).
func (m *Mirror) SetStoreCodec(name string) error {
	c, err := ir.CodecFromString(name)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ir.SetStoreCodec(m.DB, c)
	return nil
}

// SetResultCache installs (or, with maxBytes <= 0, removes) an
// epoch-keyed query result cache bounded to roughly maxBytes. Safe to
// call at any time; in-flight queries keep using the cache they loaded.
func (m *Mirror) SetResultCache(maxBytes int64) {
	m.cache.Store(newResultCache(maxBytes))
}

// ResultCacheStats reports the result cache's effectiveness counters
// (zero when caching is disabled).
func (m *Mirror) ResultCacheStats() CacheStats {
	return m.cache.Load().stats()
}

// SetThetaMemo installs (or, with maxEntries <= 0, removes) the
// epoch-keyed threshold memo bounded to roughly maxEntries. Seeds are
// pruning-only — they never change what a query returns — so toggling
// the memo is always safe.
func (m *Mirror) SetThetaMemo(maxEntries int) {
	m.thetaMemo.Store(newThetaMemo(maxEntries))
}

// ThetaMemoStats reports the threshold memo's effectiveness counters
// (zero when the memo is disabled).
func (m *Mirror) ThetaMemoStats() ThetaMemoStats {
	return m.thetaMemo.Load().stats()
}

// AnalyzeQuery exposes the text analysis pipeline used for queries.
func AnalyzeQuery(text string) []string { return ir.Analyze(text) }
