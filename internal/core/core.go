// Package core is the Mirror DBMS: the integrated multimedia database of
// the paper. It wires the Moa logical algebra (over the BAT physical
// layer), the CONTREP inference-network retrieval structure, the feature /
// clustering / thesaurus daemons and the storage layer into the system the
// demo presents: insert images and annotations, run the extraction
// pipeline, and query by text, by content, or by both (dual coding), with
// relevance feedback.
//
// Persistence comes in two modes (see ARCHITECTURE.md §"On-disk format"):
//
//   - Save/Load write and read a whole-database snapshot through the
//     BAT buffer pool in internal/storage; the loaded instance owns
//     private memory and keeps no file handles.
//   - OpenPersistent keeps the pool open for the life of the process:
//     BATs load zero-copy (mmap) where the platform allows, every
//     insert and relevance-feedback event is appended to a write-ahead
//     log, and Checkpoint flushes only dirty BATs and truncates the
//     WAL. Restart recovery = last checkpoint + WAL replay. cmd/mirrord
//     exposes this mode through its -store flag and a Checkpoint RPC.
//
// Concurrency: one RWMutex guards the instance's mutable metadata;
// mutations take the write lock and log to the WAL before releasing it,
// so WAL order equals apply order. Query paths run lock-free over
// immutable BATs (the kernel adds intra-operator parallelism); the
// thesaurus, which relevance feedback mutates between checkpoints,
// synchronises internally.
package core

import (
	"fmt"
	"sync"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/moa"
	"mirror/internal/storage"
	"mirror/internal/thesaurus"
)

// Set names of the demo schema (Section 5.2 of the paper).
const (
	LibrarySet  = "ImageLibrary"
	InternalSet = "ImageLibraryInternal"
)

// librarySchema is the application programmer's schema from the paper...
const librarySchema = `
define ImageLibrary as SET<TUPLE<
	Atomic<URL>: source,
	Atomic<Text>: annotation,
	Atomic<Image>: image
>>;`

// internalSchema ...and the internal schema the daemons derive from it.
const internalSchema = `
define ImageLibraryInternal as SET<TUPLE<
	Atomic<URL>: source,
	CONTREP<Text>: annotation,
	CONTREP<Image>: image
>>;`

// Mirror is one Mirror DBMS instance.
type Mirror struct {
	mu  sync.RWMutex
	DB  *moa.Database
	Eng *moa.Engine

	// raster store: the demo keeps decoded images keyed by URL so the
	// extraction daemons can reach them (the media server owns the
	// authoritative copies).
	rasters map[string]*media.Image
	order   []string            // ingestion order of URLs
	urls    map[string]struct{} // set of order, for O(1) duplicate checks

	// content metadata built by the pipeline
	Thes         *thesaurus.Thesaurus
	contentTerms map[bat.OID][]string // internal-set OID → cluster words
	indexed      bool

	// persistent mode (OpenPersistent): the BAT buffer pool backing the
	// loaded BATs and the write-ahead log capturing inserts/feedback
	// between checkpoints. Both nil for in-memory instances.
	pool *storage.Pool
	wal  *wal

	// shard identity (ShardedEngine members only; zero for standalone
	// stores). globalOIDs[i] is the engine-wide OID of the i-th locally
	// ingested document — the identity under which this shard's hits
	// merge into the global ranking. Persisted in the store manifest's
	// meta (checkpointed docs) and in each WAL insert record (tail docs),
	// so recovery restores the global mapping shard-locally.
	shardIndex int
	shardCount int
	globalOIDs []uint64
}

// New creates an empty Mirror DBMS with the demo schema defined.
func New() (*Mirror, error) {
	db := moa.NewDatabase()
	if err := db.DefineFromSource(librarySchema); err != nil {
		return nil, err
	}
	if err := db.DefineFromSource(internalSchema); err != nil {
		return nil, err
	}
	m := &Mirror{
		DB:           db,
		Eng:          moa.NewEngine(db),
		rasters:      map[string]*media.Image{},
		urls:         map[string]struct{}{},
		contentTerms: map[bat.OID][]string{},
	}
	return m, nil
}

// AddImage ingests one library item: its URL, its (possibly empty)
// annotation, and the raster. Call BuildContentIndex afterwards to derive
// the internal representation. In persistent mode the insert is logged
// to the WAL so it survives a crash before the next checkpoint.
func (m *Mirror) AddImage(url, annotation string, img *media.Image) error {
	return m.addImage(url, annotation, img, nil)
}

// addImageShard is AddImage for a ShardedEngine member: the engine assigns
// the document's global OID (its position in the engine-wide ingestion
// order), and the shard persists it alongside the local insert.
func (m *Mirror) addImageShard(url, annotation string, img *media.Image, global uint64) error {
	return m.addImage(url, annotation, img, &global)
}

func (m *Mirror) addImage(url, annotation string, img *media.Image, global *uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.urls[url]; dup {
		return fmt.Errorf("core: image %q already in library", url)
	}
	if _, err := m.DB.Insert(LibrarySet, map[string]any{
		"source": url, "annotation": annotation, "image": url,
	}); err != nil {
		return err
	}
	// Commit the in-memory state fully before logging, so a WAL failure
	// never leaves a half-applied insert: the item is in the library
	// either way, and the returned error then only reports reduced
	// durability (the next checkpoint still persists it).
	m.rasters[url] = img
	m.order = append(m.order, url)
	m.urls[url] = struct{}{}
	if global != nil {
		m.globalOIDs = append(m.globalOIDs, *global)
	}
	m.indexed = false
	if err := m.logWAL(walRecord{Op: "insert", URL: url, Annotation: annotation, Global: global}); err != nil {
		return fmt.Errorf("core: %q ingested but not WAL-logged (will persist at next checkpoint): %w", url, err)
	}
	return nil
}

// Size reports the number of library items.
func (m *Mirror) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.order)
}

// URLs returns the item URLs in ingestion order.
func (m *Mirror) URLs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.order...)
}

// Raster returns the stored raster for a URL.
func (m *Mirror) Raster(url string) (*media.Image, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	img, ok := m.rasters[url]
	return img, ok
}

// ContentTerms returns the cluster words of an internal-set element.
func (m *Mirror) ContentTerms(oid bat.OID) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.contentTerms[oid]...)
}

// Indexed reports whether BuildContentIndex has run since the last insert.
func (m *Mirror) Indexed() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexed
}

// SchemaSource returns the DDL of the served database.
func (m *Mirror) SchemaSource() string { return m.DB.SchemaSource() }

// Thesaurus returns the association thesaurus (nil before indexing).
func (m *Mirror) Thesaurus() *thesaurus.Thesaurus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.Thes
}

// setThesaurus installs a (possibly shared) thesaurus; the sharded engine
// uses it to point every shard at the one global instance.
func (m *Mirror) setThesaurus(t *thesaurus.Thesaurus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Thes = t
}

// globalOIDsSnapshot returns the local→global OID mapping of a shard
// member. Entries below the returned length are immutable; concurrent
// appends only extend it.
func (m *Mirror) globalOIDsSnapshot() []uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.globalOIDs
}

// Hit is one ranked retrieval result.
type Hit struct {
	OID   bat.OID
	URL   string
	Score float64
}

// urlResolver maps a document OID to its source URL; Mirror resolves
// shard-local OIDs through the internal set, ShardedEngine global OIDs
// through its ingestion order.
type urlResolver interface {
	urlOf(oid bat.OID) string
}

// urlOf resolves an internal-set OID to its source URL.
func (m *Mirror) urlOf(oid bat.OID) string {
	b, ok := m.DB.BAT(InternalSet + "_source")
	if !ok {
		return ""
	}
	v, ok := b.Find(oid)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// rankRows converts a set-typed score result into sorted hits. Results the
// pruned top-k operator produced (res.Ranked) arrive ordered and cut — a
// re-sort would be wasted work; exhaustive results with k > 0 go through a
// bounded min-heap partial selection (O(N log k) instead of O(N log N))
// that preserves the exact score-descending / OID-ascending tie order.
func (m *Mirror) rankRows(res *moa.Result, k int) []Hit {
	rows := res.Rows
	switch {
	case res.Ranked:
		// already ranked by the pruned operator; defensive cut only
	case k > 0 && k < len(rows):
		rows = topKRows(rows, k)
	default:
		res.SortByScoreDesc()
		rows = res.Rows
	}
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	hits := make([]Hit, 0, len(rows))
	for _, row := range rows {
		score, _ := row.Value.(float64)
		hits = append(hits, Hit{OID: row.OID, URL: m.urlOf(row.OID), Score: score})
	}
	return hits
}

// rowWorse reports whether row a ranks strictly after row b under the
// SortByScoreDesc order: float scores descending, non-float values last,
// ties by ascending OID.
func rowWorse(a, b moa.Row) bool {
	fa, oka := a.Value.(float64)
	fb, okb := b.Value.(float64)
	switch {
	case oka && okb && fa != fb:
		return fa < fb
	case oka != okb:
		return okb
	}
	return a.OID > b.OID
}

// topKRows selects the k best rows on the shared bounded selector;
// identical output to a full SortByScoreDesc cut at k.
func topKRows(rows []moa.Row, k int) []moa.Row {
	h := bat.NewBoundedTopK(k, rowWorse)
	for _, r := range rows {
		h.Offer(r)
	}
	return h.Ranked()
}

// AnalyzeQuery exposes the text analysis pipeline used for queries.
func AnalyzeQuery(text string) []string { return ir.Analyze(text) }
