package core

// EpochStamp identifies the published snapshot a query answer was served
// from: the monotone epoch sequence number and the number of documents
// the epoch covers (crash gaps excluded, so Docs always equals the length
// of the ingest-order prefix the epoch indexed). The zero stamp means the
// answer came from the live pre-index database (no epoch published yet).
//
// The stamp is taken from the SAME pinned epoch the query evaluated
// against — not from a separate load, which could race with a concurrent
// publish and mislabel the answer. The load harness's exactness oracle
// relies on this: a stamped reply must be bit-exact for the one-shot
// index over the first Docs ingested documents.
type EpochStamp struct {
	Seq  int64
	Docs int
}

// stamp derives the wire stamp of a pinned standalone epoch.
func (ep *IndexEpoch) stamp() EpochStamp { return EpochStamp{Seq: ep.Seq, Docs: ep.Docs} }

// stamp derives the wire stamp of a pinned engine epoch. Docs is the live
// document count (crash gaps in the frozen order excluded), precomputed
// at publish.
func (ee *engineEpoch) stamp() EpochStamp { return EpochStamp{Seq: ee.seq, Docs: ee.live} }

// ServingEpoch reports the stamp of the epoch queries are currently
// served from; ok is false (and the stamp zero) before the first publish.
// Because queries pin their own epoch, a stamp observed here only brackets
// concurrent answers — per-answer stamps come from the Stamped variants.
func (m *Mirror) ServingEpoch() (EpochStamp, bool) {
	ep := m.currentEpoch()
	if ep == nil {
		return EpochStamp{}, false
	}
	return ep.stamp(), true
}

// ServingEpoch reports the engine-wide serving stamp; see Mirror.ServingEpoch.
func (e *ShardedEngine) ServingEpoch() (EpochStamp, bool) {
	ee := e.epoch.Load()
	if ee == nil {
		return EpochStamp{}, false
	}
	return ee.stamp(), true
}
