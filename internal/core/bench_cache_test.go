package core

// Result-cache benchmark: cold (compute + cache fill) vs cached p50 for
// repeated top-k queries at collection scale, through the full core query
// path. TestEmitQueryCacheBenchJSON merges its rows into the same
// BENCH_queries.json the root TestEmitQueryBenchJSON writes (the CI
// bench-smoke job runs the root emitter first, then this one), so the
// perf trajectory carries the cold-vs-cached trade-off next to the
// physical-layer numbers.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// cacheBenchN returns the benchmark collection size (override with
// QUERY_CACHE_N).
func cacheBenchN() int {
	if s := os.Getenv("QUERY_CACHE_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1_000_000
}

// cacheBenchQueries builds distinct two-term queries over the ingest
// corpus vocabulary: enough keys for a meaningful cold p50.
func cacheBenchQueries(n int) []string {
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf("w%03d w%03d", (i*37)%512, (i*113+7)%512)
	}
	return qs
}

func TestEmitQueryCacheBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_QUERIES_JSON")
	if path == "" {
		t.Skip("BENCH_QUERIES_JSON not set")
	}
	n := cacheBenchN()
	urls, anns := ingestCorpus(n)
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for i := range urls {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	m.SetResultCache(64 << 20)

	const k = 10
	queries := cacheBenchQueries(64)

	// Cold: first execution per distinct query — full pruned retrieval
	// plus the cache fill.
	coldNs := make([]int64, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		if _, err := m.QueryAnnotations(q, k); err != nil {
			t.Fatal(err)
		}
		coldNs = append(coldNs, time.Since(t0).Nanoseconds())
	}

	// Warm: every query repeats against a populated cache on the same
	// epoch — the repeated-query path the cache exists for.
	warmNs := make([]int64, 0, 32*len(queries))
	for rep := 0; rep < 32; rep++ {
		for _, q := range queries {
			t0 := time.Now()
			if _, err := m.QueryAnnotations(q, k); err != nil {
				t.Fatal(err)
			}
			warmNs = append(warmNs, time.Since(t0).Nanoseconds())
		}
	}
	cold, warm := p50(coldNs), p50(warmNs)
	if st := m.ResultCacheStats(); st.Hits < int64(len(warmNs)) {
		t.Fatalf("warm passes should all hit: stats %+v, want >= %d hits", st, len(warmNs))
	}

	// The cached path must not allocate: the key is scalar-only, the hash
	// is inlined, and the stored ranking is returned shared.
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.QueryAnnotations(queries[0], k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached query allocates %.1f objects/op, want 0", allocs)
	}
	if warm >= 100_000 {
		t.Errorf("cache-warm p50 = %dns, want < 100µs", warm)
	}

	// Merge into the shared trajectory file (the root emitter writes it
	// first in CI; standalone runs start a fresh map).
	out := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", path, err)
		}
	}
	out["cache_n_docs"] = n
	out["cache_k"] = k
	out["cache_queries"] = len(queries)
	out["p50_query_cold_ns"] = cold
	out["p50_query_cached_ns"] = warm
	out["cached_allocs_per_op"] = allocs
	out["cache_speedup"] = fmt.Sprintf("%.1f", float64(cold)/float64(warm))
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("result cache n=%d k=%d: cold p50 %.3fms, cached p50 %.1fµs (%.0fx), %.1f allocs/op cached",
		n, k, float64(cold)/1e6, float64(warm)/1e3, float64(cold)/float64(warm), allocs)
}
