package core

import (
	"fmt"
	"testing"

	"mirror/internal/ir"
)

// TestCacheDifferentialSingle: with the result cache enabled, every query
// answer must be hit-for-hit identical to an uncached twin store — before
// an epoch swap, and (the invalidation guarantee) after AddImage+Refresh
// publishes a new epoch. Each round queries twice, so the second pass is
// served from the cache.
func TestCacheDifferentialSingle(t *testing.T) {
	urls, anns := refreshCorpus(40, 3)
	plain := oneShotStub(t, urls[:25], anns[:25])
	cached := oneShotStub(t, urls[:25], anns[:25])
	cached.SetResultCache(1 << 20)

	assertSameRetrieval(t, "single cold", plain, cached, 10)
	assertSameRetrieval(t, "single warm", plain, cached, 10)
	if st := cached.ResultCacheStats(); st.Hits == 0 {
		t.Fatalf("warm pass never hit the cache, stats = %+v", st)
	}

	for i := 25; i < 40; i++ {
		if err := plain.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
		if err := cached.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	refreshStub(t, plain)
	refreshStub(t, cached)

	// The refresh published a new epoch: the old generation's entries must
	// be unreachable, so the cached store answers from the new snapshot.
	assertSameRetrieval(t, "single post-refresh cold", plain, cached, 10)
	assertSameRetrieval(t, "single post-refresh warm", plain, cached, 10)
}

// TestCacheDifferentialSharded repeats the guarantee over the
// scatter-gather engine for N ∈ {1, 2, 8} shards.
func TestCacheDifferentialSharded(t *testing.T) {
	urls, anns := refreshCorpus(40, 3)
	for _, shards := range []int{1, 2, 8} {
		build := func() *ShardedEngine {
			e, err := NewSharded(shards)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 25; i++ {
				if err := e.AddImage(urls[i], anns[i], nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
				t.Fatal(err)
			}
			return e
		}
		plain, cached := build(), build()
		cached.SetResultCache(1 << 20)

		label := fmt.Sprintf("%d shards", shards)
		assertSameRetrieval(t, label+" cold", plain, cached, 10)
		assertSameRetrieval(t, label+" warm", plain, cached, 10)
		if st := cached.ResultCacheStats(); st.Hits == 0 {
			t.Fatalf("%s: warm pass never hit the cache, stats = %+v", label, st)
		}

		for i := 25; i < 40; i++ {
			if err := plain.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
			if err := cached.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		engineRefreshStub(t, plain)
		engineRefreshStub(t, cached)

		assertSameRetrieval(t, label+" post-refresh cold", plain, cached, 10)
		assertSameRetrieval(t, label+" post-refresh warm", plain, cached, 10)
	}
}

// TestCacheUnit exercises the resultCache directly: keying, LRU byte
// budget, generation sweep, counters, and the disabled (nil) cache.
func TestCacheUnit(t *testing.T) {
	hits := []Hit{{OID: 1, URL: "img://a", Score: 0.9}, {OID: 2, URL: "img://b", Score: 0.5}}

	t.Run("nil cache is inert", func(t *testing.T) {
		var c *resultCache
		c.put(1, cacheDual, 10, "q", nil, hits)
		if _, ok := c.get(1, cacheDual, 10, "q", nil); ok {
			t.Fatal("nil cache returned a hit")
		}
		c.sweep(2)
		if st := c.stats(); st != (CacheStats{}) {
			t.Fatalf("nil cache stats = %+v", st)
		}
		if newResultCache(0) != nil || newResultCache(-1) != nil {
			t.Fatal("non-positive budget must disable the cache")
		}
	})

	t.Run("key dimensions", func(t *testing.T) {
		c := newResultCache(1 << 20)
		c.put(1, cacheDual, 10, "q", nil, hits)
		if got, ok := c.get(1, cacheDual, 10, "q", nil); !ok || !hitsEqual(got, hits) {
			t.Fatal("exact-key get missed")
		}
		for _, miss := range []func() ([]Hit, bool){
			func() ([]Hit, bool) { return c.get(2, cacheDual, 10, "q", nil) },        // other epoch
			func() ([]Hit, bool) { return c.get(1, cacheAnnotations, 10, "q", nil) }, // other surface
			func() ([]Hit, bool) { return c.get(1, cacheDual, 5, "q", nil) },         // other k
			func() ([]Hit, bool) { return c.get(1, cacheDual, 10, "r", nil) },        // other text
		} {
			if _, ok := miss(); ok {
				t.Fatal("get hit on a differing key dimension")
			}
		}
		// Term queries key on the term list, order-sensitively.
		c.put(1, cacheContent, 10, "", []string{"c1", "c2"}, hits)
		if _, ok := c.get(1, cacheContent, 10, "", []string{"c1", "c2"}); !ok {
			t.Fatal("terms get missed")
		}
		if _, ok := c.get(1, cacheContent, 10, "", []string{"c2", "c1"}); ok {
			t.Fatal("terms get ignored order")
		}
	})

	t.Run("full rankings bypass", func(t *testing.T) {
		c := newResultCache(1 << 20)
		c.put(1, cacheDual, 0, "q", nil, hits)
		if _, ok := c.get(1, cacheDual, 0, "q", nil); ok {
			t.Fatal("k <= 0 must never be cached")
		}
	})

	t.Run("byte budget evicts LRU", func(t *testing.T) {
		const budget = 16 * 1024
		c := newResultCache(budget)
		for i := 0; i < 4096; i++ {
			c.put(1, cacheDual, 10, fmt.Sprintf("query-%04d", i), nil, hits)
		}
		st := c.stats()
		if st.Bytes > budget {
			t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, budget)
		}
		if st.Items == 0 {
			t.Fatal("eviction emptied the cache entirely")
		}
		if _, ok := c.get(1, cacheDual, 10, "query-4095", nil); !ok {
			t.Fatal("most recently inserted entry was evicted")
		}
	})

	t.Run("sweep drops stale generations", func(t *testing.T) {
		c := newResultCache(1 << 20)
		c.put(1, cacheDual, 10, "old", nil, hits)
		c.put(2, cacheDual, 10, "new", nil, hits)
		c.sweep(2)
		if _, ok := c.get(1, cacheDual, 10, "old", nil); ok {
			t.Fatal("swept generation still served")
		}
		if _, ok := c.get(2, cacheDual, 10, "new", nil); !ok {
			t.Fatal("current generation swept by mistake")
		}
		if st := c.stats(); st.Items != 1 {
			t.Fatalf("items after sweep = %d, want 1", st.Items)
		}
	})

	t.Run("collision guard", func(t *testing.T) {
		e := &cacheEntry{text: "q", terms: []string{"a"}}
		if !e.matches("q", []string{"a"}) {
			t.Fatal("exact surface rejected")
		}
		if e.matches("q", []string{"b"}) || e.matches("p", []string{"a"}) || e.matches("q", nil) {
			t.Fatal("differing surface accepted — a hash collision could serve wrong results")
		}
	})
}

// TestAlphaOneMatchesUnweightedSum pins the Rocchio Alpha fix to the old
// behaviour at the default: Session.Run with Alpha = 1 must reproduce the
// plain #sum combination bit-for-bit (CombineWSum with weights {1, 1} is
// arithmetically identical to CombineSum), so existing callers see no
// change.
func TestAlphaOneMatchesUnweightedSum(t *testing.T) {
	urls, anns := refreshCorpus(30, 5)
	m := oneShotStub(t, urls, anns)
	sess, err := m.NewSession("harbor gull")
	if err != nil {
		t.Fatal(err)
	}
	// Seed the content query from real indexed cluster words so the
	// content evidence is non-trivial.
	for _, h := range queryAnn(t, m, "harbor", 6) {
		for _, w := range m.ContentTerms(h.OID) {
			sess.weights[w] += 0.5
		}
	}
	if len(sess.weights) == 0 {
		t.Fatal("stub corpus yielded no cluster words to weight")
	}

	got, err := sess.Run(10)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the pre-Alpha combination by hand: plain #sum over text
	// and weighted content evidence.
	textHits := queryAnn(t, m, sess.Text, 0)
	ts := hitsToScores(textHits)
	terms, ws := sess.ClusterWeights()
	var wtot float64
	for _, w := range ws {
		wtot += w
	}
	cs, err := m.WeightedContentScores(terms, ws)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := ir.CombineSum(
		[]ir.Scores{ts, cs},
		[]float64{float64(len(ir.Analyze(sess.Text))) * ir.DefaultBelief, wtot * ir.DefaultBelief},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		t.Fatal(err)
	}
	want := scoresToHits(m, combined, 10)
	ir.ReleaseScores(combined)

	if !hitsEqual(want, got) {
		t.Fatalf("Alpha=1 Run diverges from the unweighted #sum:\n  want %v\n  got  %v", want, got)
	}
}

// TestAlphaReweightsTextEvidence: the previously dead Alpha gain now
// actually shifts the combination — raising it moves every document's
// score toward its text evidence, exactly per the #wsum semantics.
func TestAlphaReweightsTextEvidence(t *testing.T) {
	urls, anns := refreshCorpus(30, 5)
	m := oneShotStub(t, urls, anns)
	sess, err := m.NewSession("harbor gull")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range queryAnn(t, m, "tide", 6) {
		for _, w := range m.ContentTerms(h.OID) {
			sess.weights[w] += 0.5
		}
	}
	if len(sess.weights) == 0 {
		t.Fatal("stub corpus yielded no cluster words to weight")
	}

	base, err := sess.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sess.Alpha = 3
	boosted, err := sess.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if hitsEqual(base, boosted) {
		t.Fatal("changing Alpha left the ranking untouched — the gain is still dead")
	}

	// Cross-check one document against the #wsum formula directly.
	textHits := queryAnn(t, m, sess.Text, 0)
	ts := hitsToScores(textHits)
	terms, ws := sess.ClusterWeights()
	var wtot float64
	for _, w := range ws {
		wtot += w
	}
	cs, err := m.WeightedContentScores(terms, ws)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.CombineWSum(
		[]ir.Scores{ts, cs},
		[]float64{3, 1},
		[]float64{float64(len(ir.Analyze(sess.Text))) * ir.DefaultBelief, wtot * ir.DefaultBelief},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range boosted {
		if s, ok := want[uint64(h.OID)]; !ok || s != h.Score {
			ir.ReleaseScores(want)
			t.Fatalf("doc %d: Run score %v, #wsum formula %v", h.OID, h.Score, s)
		}
	}
	ir.ReleaseScores(want)
}

func queryAnn(t *testing.T, m *Mirror, text string, k int) []Hit {
	t.Helper()
	hits, err := m.QueryAnnotations(text, k)
	if err != nil {
		t.Fatal(err)
	}
	return hits
}
