package core

// Online-ingest benchmark (E13): sustained insert-while-serving
// throughput, query latency under concurrent ingest vs quiesced, and
// refresh (delta publish) latency at collection scale. TestEmitIngestBenchJSON
// writes the numbers as BENCH_ingest.json when the BENCH_INGEST_JSON env
// var names a path — the CI bench-smoke job archives it alongside
// BENCH_queries.json as the ingest-side perf trajectory.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ingestN returns the benchmark collection size (override with INGEST_N).
func ingestN() int {
	if s := os.Getenv("INGEST_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1_000_000
}

// ingestCorpus is a cheap deterministic corpus: a 512-word vocabulary,
// 2-6 words per annotation, every 8th document unannotated.
func ingestCorpus(n int) (urls, anns []string) {
	urls = make([]string, n)
	anns = make([]string, n)
	rnd := uint64(99991)
	next := func() uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd
	}
	for i := 0; i < n; i++ {
		urls[i] = fmt.Sprintf("img://bench-%07d", i)
		if i%8 == 7 {
			continue
		}
		m := 2 + int(next()%5)
		words := make([]byte, 0, m*5)
		for j := 0; j < m; j++ {
			if j > 0 {
				words = append(words, ' ')
			}
			words = append(words, fmt.Sprintf("w%03d", next()%512)...)
		}
		anns[i] = string(words)
	}
	return urls, anns
}

func p50(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

func TestEmitIngestBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_INGEST_JSON")
	if path == "" {
		t.Skip("BENCH_INGEST_JSON not set")
	}
	n := ingestN()
	batch := n / 2
	urls, anns := ingestCorpus(n)

	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}

	queries := []string{"w001 w137", "w500", "w042 w314 w271", "w099 w100"}
	const k = 10

	// Phase 1 — sustained online ingest: the second half of the corpus
	// streams in while a refresh loop publishes delta segments and a
	// querier measures serving latency. Everything a production mirrord
	// with -refresh-every does, minus the network.
	var (
		done       atomic.Bool
		duringNs   []int64
		duringMu   sync.Mutex
		refreshNs  []int64
		refreshed  int
		mergeTotal = 0
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // querier under ingest
		defer wg.Done()
		qi := 0
		for !done.Load() {
			q := queries[qi%len(queries)]
			qi++
			t0 := time.Now()
			if _, err := m.QueryAnnotations(q, k); err != nil {
				t.Error(err)
				return
			}
			d := time.Since(t0).Nanoseconds()
			duringMu.Lock()
			duringNs = append(duringNs, d)
			duringMu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	chunk := batch / 8
	if chunk < 1 {
		chunk = 1
	}
	t0 := time.Now()
	for at := batch; at < n; {
		hi := at + chunk
		if hi > n {
			hi = n
		}
		for i := at; i < hi; i++ {
			if err := m.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		at = hi
		r0 := time.Now()
		m.buildMu.Lock()
		st, err := m.refreshWith(stubPipeline{})
		m.buildMu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		refreshNs = append(refreshNs, time.Since(r0).Nanoseconds())
		refreshed += st.NewDocs
		mergeTotal += st.Merges
	}
	ingestWall := time.Since(t0)
	done.Store(true)
	wg.Wait()
	if refreshed != n-batch {
		t.Fatalf("refreshes covered %d docs, want %d", refreshed, n-batch)
	}

	// Phase 2 — quiesced query latency over the final epoch.
	var quiescedNs []int64
	for rep := 0; rep < 64; rep++ {
		q := queries[rep%len(queries)]
		q0 := time.Now()
		if _, err := m.QueryAnnotations(q, k); err != nil {
			t.Fatal(err)
		}
		quiescedNs = append(quiescedNs, time.Since(q0).Nanoseconds())
	}

	docsPerSec := float64(n-batch) / ingestWall.Seconds()
	during := p50(duringNs)
	quiesced := p50(quiescedNs)
	out := map[string]any{
		"experiment":             "E13",
		"n_docs":                 n,
		"batch_docs":             batch,
		"ingested_docs":          n - batch,
		"k":                      k,
		"ingest_docs_per_sec":    fmt.Sprintf("%.0f", docsPerSec),
		"refreshes":              len(refreshNs),
		"merges":                 mergeTotal,
		"segments_final":         m.maxSegments(),
		"p50_refresh_ns":         p50(refreshNs),
		"p50_query_ingesting_ns": during,
		"p50_query_quiesced_ns":  quiesced,
		"ingest_query_penalty":   fmt.Sprintf("%.2f", float64(during)/float64(quiesced)),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E13 n=%d: ingest %.0f docs/s, refresh p50 %.1fms, query p50 %.3fms ingesting / %.3fms quiesced (%d samples), %d segments",
		n, docsPerSec, float64(p50(refreshNs))/1e6, float64(during)/1e6, float64(quiesced)/1e6, len(duringNs), m.maxSegments())
}
