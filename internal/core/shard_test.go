package core

import (
	"fmt"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/corpus"
)

// The sharded differential suite: a ShardedEngine over any shard count
// must answer every retrieval exactly like one Mirror holding the whole
// collection — same documents, same scores, same tie order (ascending
// global OID), BUN for BUN. This is the invariant that makes sharding an
// implementation detail instead of a semantics change.

// buildShardedDemo ingests the same deterministic collection as buildDemo
// into an n-shard engine and runs the global index build.
func buildShardedDemo(t *testing.T, n, shards int) (*ShardedEngine, []*corpus.Item) {
	t.Helper()
	items := corpus.Generate(corpus.Config{N: n, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
	e, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := e.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 6
	if err := e.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	return e, items
}

// diffHits asserts two rankings are identical hit-for-hit.
func diffHits(t *testing.T, label string, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i].OID != got[i].OID || want[i].Score != got[i].Score || want[i].URL != got[i].URL {
			t.Fatalf("%s: rank %d: single (%d, %q, %v) vs sharded (%d, %q, %v)",
				label, i, want[i].OID, want[i].URL, want[i].Score, got[i].OID, got[i].URL, got[i].Score)
		}
	}
}

// demoQueries mixes in-vocabulary, multi-term, and out-of-vocabulary text
// so the differential covers matches, partial matches, and default-filled
// tie runs (the case where tie-breaks actually bite).
func demoQueries(items []*corpus.Item) []string {
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	return []string{
		term,
		term + " scene",
		"xylophonequark",         // OOV: every document ties at the default fill
		term + " zz unknownword", // partial match + OOV
	}
}

func TestShardedEqualsSingleStore(t *testing.T) {
	const n = 24
	single, items := buildDemo(t, n)
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, _ := buildShardedDemo(t, n, shards)
			for _, q := range demoQueries(items) {
				for _, k := range []int{0, 3, 10, n + 5} {
					want, err := single.QueryAnnotations(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.QueryAnnotations(q, k)
					if err != nil {
						t.Fatal(err)
					}
					diffHits(t, fmt.Sprintf("rank %q k=%d", q, k), want, got)
				}
				want, err := single.QueryDualCoding(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.QueryDualCoding(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				diffHits(t, fmt.Sprintf("dual %q", q), want, got)
			}
			// content retrieval through thesaurus expansion
			words := single.ExpandQuery(demoQueries(items)[0], 5)
			gotWords := e.ExpandQuery(demoQueries(items)[0], 5)
			if fmt.Sprint(words) != fmt.Sprint(gotWords) {
				t.Fatalf("thesaurus expansion: %v vs %v", words, gotWords)
			}
			if len(words) > 0 {
				want, err := single.QueryContent(words, 7)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.QueryContent(words, 7)
				if err != nil {
					t.Fatal(err)
				}
				diffHits(t, "content", want, got)
			}
		})
	}
}

// TestShardedMoaQueryEqualsSingleStore pins the raw Moa surface: ranked
// top-k comes back identical (the pruned path with the shared threshold),
// and the full un-cut result concatenates in global OID order.
func TestShardedMoaQueryEqualsSingleStore(t *testing.T) {
	const n = 24
	single, items := buildDemo(t, n)
	e, _ := buildShardedDemo(t, n, 2)
	terms := []string{corpus.CanonicalTerm(mostAnnotatedClass(items)), "scene"}

	const k = 5
	want, err := single.QueryTopK(annotationQuery, terms, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.QueryTopK(annotationQuery, terms, k)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Ranked || !got.Ranked {
		t.Fatalf("expected both ranked (single %v, sharded %v)", want.Ranked, got.Ranked)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("rows: %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].OID != got.Rows[i].OID || want.Rows[i].Value != got.Rows[i].Value {
			t.Fatalf("row %d: %+v vs %+v", i, want.Rows[i], got.Rows[i])
		}
	}

	// full result: same rows, ascending global OIDs
	wantFull, err := single.Query(annotationQuery, terms)
	if err != nil {
		t.Fatal(err)
	}
	gotFull, err := e.Query(annotationQuery, terms)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantFull.Rows) != len(gotFull.Rows) {
		t.Fatalf("full rows: %d vs %d", len(wantFull.Rows), len(gotFull.Rows))
	}
	for i := range gotFull.Rows {
		if gotFull.Rows[i].OID != bat.OID(i) {
			t.Fatalf("full row %d has OID %d, want dense ascending", i, gotFull.Rows[i].OID)
		}
		if wantFull.Rows[i].Value != gotFull.Rows[i].Value {
			t.Fatalf("full row %d: %v vs %v", i, wantFull.Rows[i].Value, gotFull.Rows[i].Value)
		}
	}

	// scalar queries cannot be merged and must say so
	if _, err := e.Query("count(ImageLibrary);", nil); err == nil {
		t.Fatal("scalar query across shards should be refused")
	}
}

// TestShardedEmptyShards: more shards than documents leaves some shards
// empty; they must index, answer, and merge as zero-hit participants.
func TestShardedEmptyShards(t *testing.T) {
	const n = 5
	single, items := buildDemo(t, n)
	e, _ := buildShardedDemo(t, n, 8)
	empty := 0
	for _, info := range e.ShardInfos() {
		if info.Docs == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatalf("expected empty shards with %d docs over 8 shards (got counts %+v)", n, e.ShardInfos())
	}
	for _, q := range demoQueries(items) {
		want, err := single.QueryAnnotations(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.QueryAnnotations(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "empty-shards "+q, want, got)
	}
}

// TestShardedSkew forces every document onto one shard (URLs chosen by
// the routing hash itself) and checks the degenerate placement still
// matches the single store.
func TestShardedSkew(t *testing.T) {
	const n = 10
	items := corpus.Generate(corpus.Config{N: n, W: 48, H: 48, Seed: 11, AnnotateRate: 1})
	probe, err := NewSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	// rename items so all land on shard 0 of 4
	renamed := make([]string, n)
	for i := range items {
		for suffix := 0; ; suffix++ {
			u := fmt.Sprintf("%s?v=%d", items[i].URL, suffix)
			if probe.shardFor(u) == 0 {
				renamed[i] = u
				break
			}
		}
	}
	single, errS := New()
	e, errE := NewSharded(4)
	if errS != nil || errE != nil {
		t.Fatal(errS, errE)
	}
	for i, it := range items {
		if err := single.AddImage(renamed[i], it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
		if err := e.AddImage(renamed[i], it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse"}
	opts.KMax = 4
	if err := single.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	infos := e.ShardInfos()
	if infos[0].Docs != n {
		t.Fatalf("skew setup failed: shard 0 holds %d of %d docs (%+v)", infos[0].Docs, n, infos)
	}
	class := mostAnnotatedClass(items)
	for _, q := range []string{corpus.CanonicalTerm(class), "nosuchwordatall"} {
		want, err := single.QueryAnnotations(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.QueryAnnotations(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "skew "+q, want, got)
	}
}

// TestShardedSessionFeedback: a feedback session over the sharded engine
// adapts the shared thesaurus exactly like a single store's session.
func TestShardedSessionFeedback(t *testing.T) {
	const n = 24
	single, items := buildDemo(t, n)
	e, _ := buildShardedDemo(t, n, 2)
	q := corpus.CanonicalTerm(mostAnnotatedClass(items))

	ss, err := single.NewSession(q)
	if err != nil {
		t.Fatal(err)
	}
	se, err := e.NewSession(q)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := ss.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := se.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "session round 0", h1, h2)
	if len(h1) < 3 {
		t.Fatalf("thin session result: %d hits", len(h1))
	}
	rel := []bat.OID{h1[0].OID}
	non := []bat.OID{h1[len(h1)-1].OID}
	if err := ss.Feedback(rel, non); err != nil {
		t.Fatal(err)
	}
	if err := se.Feedback(rel, non); err != nil {
		t.Fatal(err)
	}
	h1, err = ss.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	h2, err = se.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "session round 1", h1, h2)
}

// TestShardedServeTransparent: the RPC service over a sharded engine
// speaks the exact protocol of a single store — same replies, same
// rankings — so clients need not know the topology.
func TestShardedServeTransparent(t *testing.T) {
	const n = 24
	single, items := buildDemo(t, n)
	e, _ := buildShardedDemo(t, n, 4)
	term := corpus.CanonicalTerm(mostAnnotatedClass(items))

	addrS, stopS, err := Serve(single, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stopS()
	addrE, stopE, err := e.Serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stopE()

	cs, err := DialMirror(addrS)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	ce, err := DialMirror(addrE)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	for _, dual := range []bool{false, true} {
		want, err := cs.TextQuery(term, 5, dual)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ce.TextQuery(term, 5, dual)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("dual=%v: %d vs %d hits", dual, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("dual=%v hit %d: %+v vs %+v", dual, i, want[i], got[i])
			}
		}
	}

	wantMoa, err := cs.MoaQueryTopK(annotationQuery, []string{term}, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotMoa, err := ce.MoaQueryTopK(annotationQuery, []string{term}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(wantMoa.OIDs) != fmt.Sprint(gotMoa.OIDs) || fmt.Sprint(wantMoa.Values) != fmt.Sprint(gotMoa.Values) {
		t.Fatalf("MoaQuery diverged:\nsingle  %v %v\nsharded %v %v", wantMoa.OIDs, wantMoa.Values, gotMoa.OIDs, gotMoa.Values)
	}

	wantSchema, err := cs.Schema()
	if err != nil {
		t.Fatal(err)
	}
	gotSchema, err := ce.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if wantSchema != gotSchema {
		t.Fatal("schemas diverged")
	}
}
