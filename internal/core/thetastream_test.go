package core

import (
	"testing"

	"mirror/internal/bat"
)

// TestScanThetaRegistry pins the registry semantics RaiseTheta relies
// on: raises reach every scan registered under an id (retried legs may
// overlap), deregistration is exact, unknown ids are a benign no-op, and
// a drained registry holds no bytes.
func TestScanThetaRegistry(t *testing.T) {
	a, b := bat.NewTopKThreshold(), bat.NewTopKThreshold()
	dropA := registerScanTheta(7, a)
	dropB := registerScanTheta(7, b) // timed-out leg retried: both still scanning

	raiseScanTheta(7, 0.5)
	if a.Load() != 0.5 || b.Load() != 0.5 {
		t.Fatalf("raise missed a registered scan: a=%v b=%v", a.Load(), b.Load())
	}

	dropA()
	raiseScanTheta(7, 0.8)
	if a.Load() != 0.5 {
		t.Fatalf("deregistered scan still raised: %v", a.Load())
	}
	if b.Load() != 0.8 {
		t.Fatalf("surviving scan not raised: %v", b.Load())
	}

	raiseScanTheta(7, 0.2) // monotone: never lowers
	if b.Load() != 0.8 {
		t.Fatalf("raise lowered the threshold: %v", b.Load())
	}

	dropB()
	raiseScanTheta(7, 0.9)     // drained id: no-op
	raiseScanTheta(12345, 0.9) // never-registered id: no-op

	scanThetas.Lock()
	n := len(scanThetas.m)
	scanThetas.Unlock()
	if n != 0 {
		t.Fatalf("registry leaked %d ids after every scan deregistered", n)
	}
}
