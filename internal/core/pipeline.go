package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mirror/internal/bat"
	"mirror/internal/cluster"
	"mirror/internal/daemon"
	"mirror/internal/dict"
	"mirror/internal/feature"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/thesaurus"
)

// IndexOptions parameterise the extraction pipeline.
type IndexOptions struct {
	Seed       int64
	KMin, KMax int      // AutoClass class search range per feature space
	Features   []string // extractor names; nil = the full demo daemon set
}

// DefaultIndexOptions matches the demo configuration.
func DefaultIndexOptions() IndexOptions {
	return IndexOptions{Seed: 1, KMin: 2, KMax: 8}
}

// segmentExtractor abstracts "local function call" vs "remote daemon" so
// the same pipeline drives both; the paper's point is exactly that these
// are interchangeable behind the daemon abstraction. fit returns the
// fitted codebook when the implementation can expose it (the in-process
// pipeline); daemons that only return assignments yield a nil codebook,
// which disables incremental Refresh until the next local full build.
type segmentExtractor interface {
	segment(url string) (tiles [][][4]int, err error)
	extract(url string, featureName string, tiles [][4]int) ([]float64, error)
	fit(data [][]float64, kmin, kmax int, seed int64) ([]int, *SpaceCodebook, error)
	features() []string
	close()
}

// SpaceCodebook freezes one feature space's clustering: the
// standardisation parameters and the fitted mixture model. Assign maps a
// raw feature vector to its cluster exactly as the full build did.
type SpaceCodebook struct {
	Means []float64      `json:"means"`
	Stds  []float64      `json:"stds"`
	Model *cluster.Model `json:"model"`
}

// Assign returns the cluster index of a raw (unstandardised) vector.
func (sc *SpaceCodebook) Assign(x []float64) int {
	return sc.Model.Assign(cluster.ApplyStandardize(x, sc.Means, sc.Stds))
}

// Codebook freezes the whole content-model of a full build — one
// SpaceCodebook per feature space. Delta refreshes extract features from
// new documents and Assign them to the existing clusters, so incremental
// content words stay comparable with the indexed collection; discovering
// NEW clusters requires an explicit offline BuildContentIndex. Persisted
// in the store manifest so refreshes keep working across restarts.
type Codebook struct {
	Features []string                  `json:"features"`
	Spaces   map[string]*SpaceCodebook `json:"spaces"`
}

// BuildContentIndex runs the full Section 5.1 pipeline in-process:
// segmentation, the six feature daemons, AutoClass clustering per feature
// space, CONTREP indexing of the resulting cluster words, and thesaurus
// construction.
func (m *Mirror) BuildContentIndex(opts IndexOptions) error {
	return m.buildIndex(opts, newLocalPipeline(m.rasterLookup()))
}

// BuildContentIndexDistributed runs the same pipeline against daemons
// discovered through the distributed data dictionary (Figure 1).
func (m *Mirror) BuildContentIndexDistributed(opts IndexOptions, dictAddr string) error {
	p, err := newRemotePipeline(m.rasterLookup(), dictAddr)
	if err != nil {
		return err
	}
	return m.buildIndex(opts, p)
}

// rasterLookup exposes the raster store to a pipeline. The lookup is
// lock-free: it only runs inside buildIndex, which holds m.mu for the
// whole build (a ShardedEngine build instead goes through Raster, which
// takes each shard's read lock).
func (m *Mirror) rasterLookup() func(url string) (*media.Image, bool) {
	return func(url string) (*media.Image, bool) {
		img, ok := m.rasters[url]
		return img, ok
	}
}

// buildIndex drives the pipeline over the ingested items and populates the
// internal schema, publishing the result as a fresh single-segment epoch.
// Full builds are the explicit offline re-clustering operation: they hold
// the write lock for the duration (inserts queue), while queries keep
// serving the previous epoch untouched.
func (m *Mirror) buildIndex(opts IndexOptions, pipe segmentExtractor) error {
	defer pipe.close()
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.follower {
		return ErrFollower
	}

	imageWords, cb, err := runExtraction(pipe, opts, m.order)
	if err != nil {
		return err
	}
	thDocs, err := m.populateContentLocked(imageWords, nil, nil)
	if err != nil {
		return err
	}
	m.Thes = thesaurus.Build(thDocs)
	m.codebook = cb
	m.indexed = true
	return m.publishEpochLocked()
}

// extractFeatures is stage 1 of the pipeline: segmentation plus feature
// extraction over the given document order. Both stages are
// embarrassingly parallel per item/segment; they fan out over up to
// bat.Parallelism() workers with results collected positionally, so the
// populated schema is identical to a serial run. The extractors, the
// segmenter, and the daemon RPC clients are all safe for concurrent use.
func extractFeatures(pipe segmentExtractor, featureNames, order []string) (segURLs []string, perFeature map[string][][]float64, err error) {
	perImage := make([][][][4]int, len(order))
	segErrs := make([]error, len(order))
	parallelEach(len(order), func(idx int) error {
		perImage[idx], segErrs[idx] = pipe.segment(order[idx])
		return segErrs[idx]
	})
	segTiles := make([][][4]int, 0)
	for idx, url := range order {
		if segErrs[idx] != nil {
			return nil, nil, fmt.Errorf("core: segmenting %s: %w", url, segErrs[idx])
		}
		for _, tl := range perImage[idx] {
			segURLs = append(segURLs, url)
			segTiles = append(segTiles, tl)
		}
	}
	perFeature = map[string][][]float64{}
	for _, fname := range featureNames {
		vecs := make([][]float64, len(segURLs))
		extErrs := make([]error, len(segURLs))
		parallelEach(len(segURLs), func(si int) error {
			vecs[si], extErrs[si] = pipe.extract(segURLs[si], fname, segTiles[si])
			return extErrs[si]
		})
		for si, err := range extErrs {
			if err != nil {
				return nil, nil, fmt.Errorf("core: extracting %s from %s: %w", fname, segURLs[si], err)
			}
		}
		perFeature[fname] = vecs
	}
	return segURLs, perFeature, nil
}

// runExtraction is stages 1–3 of the pipeline, independent of any one
// store: segmentation, feature extraction and AutoClass clustering over
// the given document order, returning each document's content words (with
// duplicates; callers dedup at insert) plus the frozen codebook (nil when
// the clustering daemon cannot expose its models). A ShardedEngine runs
// it ONCE over the global order — clustering is collection-global, so
// per-shard fits would assign different cluster words than a single
// store.
func runExtraction(pipe segmentExtractor, opts IndexOptions, order []string) (map[string][]string, *Codebook, error) {
	if opts.KMin <= 0 {
		opts.KMin = 2
	}
	if opts.KMax < opts.KMin {
		opts.KMax = opts.KMin + 6
	}
	featureNames := opts.Features
	if featureNames == nil {
		featureNames = pipe.features()
	}
	segURLs, perFeature, err := extractFeatures(pipe, featureNames, order)
	if err != nil {
		return nil, nil, err
	}

	// 2. AutoClass clustering per feature space; each (feature, cluster)
	// pair becomes a content "word" such as gabor_3. Feature spaces are
	// independent, so they fit concurrently; the words append serially in
	// feature order afterwards to keep per-segment word order stable.
	assigns := make([][]int, len(featureNames))
	books := make([]*SpaceCodebook, len(featureNames))
	fitErrs := make([]error, len(featureNames))
	parallelEach(len(featureNames), func(fi int) error {
		assigns[fi], books[fi], fitErrs[fi] = pipe.fit(perFeature[featureNames[fi]], opts.KMin, opts.KMax, opts.Seed)
		return fitErrs[fi]
	})
	segWords := make([][]string, len(segURLs))
	cb := &Codebook{Features: append([]string(nil), featureNames...), Spaces: map[string]*SpaceCodebook{}}
	for fi, fname := range featureNames {
		if fitErrs[fi] != nil {
			return nil, nil, fmt.Errorf("core: clustering %s: %w", fname, fitErrs[fi])
		}
		for si, cl := range assigns[fi] {
			segWords[si] = append(segWords[si], fmt.Sprintf("%s_%d", fname, cl))
		}
		if books[fi] != nil {
			cb.Spaces[fname] = books[fi]
		}
	}
	if len(cb.Spaces) != len(featureNames) {
		cb = nil // a daemon kept its model: incremental assignment impossible
	}

	// 3. per-image content terms: the union of its segments' words.
	imageWords := make(map[string][]string, len(order))
	for si, url := range segURLs {
		imageWords[url] = append(imageWords[url], segWords[si]...)
	}
	return imageWords, cb, nil
}

// assignExtraction is the delta-refresh variant of runExtraction: stage 1
// runs as usual over the new documents, but stage 2 ASSIGNS every segment
// to the frozen codebook's existing clusters instead of refitting — the
// content vocabulary cannot drift between refreshes, which is what keeps
// incremental documents comparable with the indexed collection.
func assignExtraction(pipe segmentExtractor, cb *Codebook, order []string) (map[string][]string, error) {
	segURLs, perFeature, err := extractFeatures(pipe, cb.Features, order)
	if err != nil {
		return nil, err
	}
	segWords := make([][]string, len(segURLs))
	for _, fname := range cb.Features {
		sc := cb.Spaces[fname]
		if sc == nil || sc.Model == nil {
			return nil, fmt.Errorf("core: codebook has no model for feature %q", fname)
		}
		for si, vec := range perFeature[fname] {
			segWords[si] = append(segWords[si], fmt.Sprintf("%s_%d", fname, sc.Assign(vec)))
		}
	}
	imageWords := make(map[string][]string, len(order))
	for si, url := range segURLs {
		imageWords[url] = append(imageWords[url], segWords[si]...)
	}
	return imageWords, nil
}

// populateContentLocked is stage 4: rebuild the internal set from the
// per-document content words and finalize the CONTREPs. annDict/imgDict,
// when non-nil, are unioned into the respective dictionaries before
// Finalize — a sharded build passes the global vocabulary so every shard
// agrees on what is in-dictionary (its statistics overrides are registered
// by the engine beforehand). Returns the thesaurus training docs in local
// document order; callers hold m.mu.
func (m *Mirror) populateContentLocked(imageWords map[string][]string, annDict, imgDict []string) ([]thesaurus.Doc, error) {
	if err := m.DB.Reset(InternalSet); err != nil {
		return nil, err
	}
	m.contentTerms = map[bat.OID][]string{}
	annB, _ := m.DB.BAT(LibrarySet + "_annotation")
	var thDocs []thesaurus.Doc
	for i, url := range m.order {
		annV, _ := annB.Find(bat.OID(i))
		ann, _ := annV.(string)
		terms := dedupSorted(imageWords[url])
		oid, err := m.DB.Insert(InternalSet, map[string]any{
			"source":     url,
			"annotation": ann,
			"image":      terms,
		})
		if err != nil {
			return nil, err
		}
		m.contentTerms[oid] = terms
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: ir.Analyze(ann), Concepts: terms})
		}
	}
	if annDict != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_annotation", annDict); err != nil {
			return nil, err
		}
	}
	if imgDict != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_image", imgDict); err != nil {
			return nil, err
		}
	}
	if err := m.DB.Finalize(InternalSet); err != nil {
		return nil, err
	}
	return thDocs, nil
}

// populateShardIndex is the per-shard half of a sharded index build: the
// engine has computed content words and registered the global statistics
// overrides; this installs the shard's slice and marks it indexed. The
// engine owns the thesaurus.
func (m *Mirror) populateShardIndex(imageWords map[string][]string, annDict, imgDict []string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.populateContentLocked(imageWords, annDict, imgDict); err != nil {
		return err
	}
	m.indexed = true
	return nil
}

// parallelEach runs f(i) for every i in [0, n) on up to bat.Parallelism()
// workers (the same knob that sizes the BAT kernel's pool). Unlike
// bat.ParallelFor it has no minimum-size threshold: pipeline items are few
// but each costs milliseconds of image work, so even two are worth a
// goroutine. A non-nil return from f stops the dispatch of further items —
// matching the serial loops this replaced, which aborted at first failure —
// though items already in flight still finish.
func parallelEach(n int, f func(i int) error) {
	workers := bat.Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if f(i) != nil {
				return
			}
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	var failed atomic.Bool
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if f(i) != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// ---- local pipeline ----

type localPipeline struct {
	rasters func(url string) (*media.Image, bool)
	seg     *feature.Segmenter
	exs     map[string]feature.Extractor
}

func newLocalPipeline(rasters func(url string) (*media.Image, bool)) *localPipeline {
	p := &localPipeline{rasters: rasters, seg: feature.NewSegmenter(), exs: map[string]feature.Extractor{}}
	for _, ex := range feature.All() {
		p.exs[ex.Name()] = ex
	}
	return p
}

func (p *localPipeline) features() []string {
	names := make([]string, 0, len(p.exs))
	for n := range p.exs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (p *localPipeline) segment(url string) ([][][4]int, error) {
	img, ok := p.rasters(url)
	if !ok {
		return nil, fmt.Errorf("core: no raster for %s", url)
	}
	segs := p.seg.Segment(img)
	out := make([][][4]int, len(segs))
	for i, s := range segs {
		out[i] = s.Tiles
	}
	return out, nil
}

func (p *localPipeline) extract(url, fname string, tiles [][4]int) ([]float64, error) {
	img, ok := p.rasters(url)
	if !ok {
		return nil, fmt.Errorf("core: no raster for %s", url)
	}
	ex, ok := p.exs[fname]
	if !ok {
		return nil, fmt.Errorf("core: unknown feature %q", fname)
	}
	seg := &feature.Segment{Tiles: tiles}
	return seg.ExtractAveraged(img, ex), nil
}

func (p *localPipeline) fit(data [][]float64, kmin, kmax int, seed int64) ([]int, *SpaceCodebook, error) {
	std, means, stds := cluster.Standardize(data)
	model, err := cluster.Select(std, kmin, kmax, seed)
	if err != nil {
		return nil, nil, err
	}
	sc := &SpaceCodebook{Means: means, Stds: stds, Model: model}
	assign := make([]int, len(data))
	for i, x := range data {
		assign[i] = sc.Assign(x)
	}
	return assign, sc, nil
}

func (p *localPipeline) close() {}

// ---- remote (Figure 1) pipeline ----

type remotePipeline struct {
	rasters      func(url string) (*media.Image, bool)
	segClient    *daemon.Client
	featClients  map[string]*daemon.Client
	clustClient  *daemon.Client
	ppmMu        sync.Mutex // guards the ppmCache map under parallelEach
	ppmCache     map[string]*ppmEntry
	featureNames []string
}

// ppmEntry is a singleflight cache slot: the map mutex is held only for the
// lookup, and the CPU-bound encode runs once per URL outside it, so
// concurrent workers encoding different images overlap.
type ppmEntry struct {
	once sync.Once
	data []byte
	err  error
}

func newRemotePipeline(rasters func(url string) (*media.Image, bool), dictAddr string) (*remotePipeline, error) {
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		return nil, err
	}
	defer dc.Close()
	p := &remotePipeline{rasters: rasters, featClients: map[string]*daemon.Client{}, ppmCache: map[string]*ppmEntry{}}

	segs, err := dc.List("segmenter")
	if err != nil || len(segs) == 0 {
		return nil, fmt.Errorf("core: no segmenter daemon registered (%v)", err)
	}
	p.segClient, err = daemon.Dial(segs[0])
	if err != nil {
		return nil, err
	}
	feats, err := dc.List("feature")
	if err != nil || len(feats) == 0 {
		return nil, fmt.Errorf("core: no feature daemons registered (%v)", err)
	}
	for _, fi := range feats {
		c, err := daemon.Dial(fi)
		if err != nil {
			return nil, err
		}
		for _, name := range fi.Provides {
			p.featClients[name] = c
			p.featureNames = append(p.featureNames, name)
		}
	}
	sort.Strings(p.featureNames)
	clusters, err := dc.List("cluster")
	if err != nil || len(clusters) == 0 {
		return nil, fmt.Errorf("core: no cluster daemon registered (%v)", err)
	}
	p.clustClient, err = daemon.Dial(clusters[0])
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (p *remotePipeline) features() []string { return p.featureNames }

func (p *remotePipeline) ppm(url string) ([]byte, error) {
	p.ppmMu.Lock()
	e, ok := p.ppmCache[url]
	if !ok {
		e = &ppmEntry{}
		p.ppmCache[url] = e
	}
	p.ppmMu.Unlock()
	e.once.Do(func() {
		img, ok := p.rasters(url)
		if !ok {
			e.err = fmt.Errorf("core: no raster for %s", url)
			return
		}
		var buf bytes.Buffer
		if err := img.EncodePPM(&buf); err != nil {
			e.err = err
			return
		}
		e.data = buf.Bytes()
	})
	return e.data, e.err
}

func (p *remotePipeline) segment(url string) ([][][4]int, error) {
	ppm, err := p.ppm(url)
	if err != nil {
		return nil, err
	}
	reply, err := p.segClient.Segment(ppm)
	if err != nil {
		return nil, err
	}
	return reply.Tiles, nil
}

func (p *remotePipeline) extract(url, fname string, tiles [][4]int) ([]float64, error) {
	c, ok := p.featClients[fname]
	if !ok {
		return nil, fmt.Errorf("core: no daemon provides feature %q", fname)
	}
	ppm, err := p.ppm(url)
	if err != nil {
		return nil, err
	}
	return c.Extract(ppm, tiles)
}

// fit against the clustering daemon returns assignments only — the wire
// protocol does not ship models — so distributed builds publish a nil
// codebook and Refresh stays unavailable until a local full build.
func (p *remotePipeline) fit(data [][]float64, kmin, kmax int, seed int64) ([]int, *SpaceCodebook, error) {
	reply, err := p.clustClient.Fit(data, kmin, kmax, seed)
	if err != nil {
		return nil, nil, err
	}
	return reply.Assign, nil, nil
}

func (p *remotePipeline) close() {
	if p.segClient != nil {
		p.segClient.Close()
	}
	closed := map[*daemon.Client]bool{}
	for _, c := range p.featClients {
		if !closed[c] {
			closed[c] = true
			c.Close()
		}
	}
	if p.clustClient != nil {
		p.clustClient.Close()
	}
}
