package core

import (
	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/thesaurus"
)

// SessionSite is the retrieval surface an out-of-package engine (the
// networked router of internal/dist) provides so core can host feedback
// sessions and dual-coding retrieval over it with EXACTLY the in-process
// semantics: Session.Run/Feedback and queryDualCoding contain the
// combination arithmetic, and running them over this interface — rather
// than reimplementing them remotely — is what keeps distributed session
// results bit-identical to a single store's.
type SessionSite interface {
	// URLOf resolves an engine-global document OID to its source URL.
	URLOf(oid uint64) string
	QueryAnnotations(text string, k int) ([]Hit, error)
	QueryContent(clusterWords []string, k int) ([]Hit, error)
	ExpandQuery(text string, topK int) []string
	// WeightedContentScores returns a POOLED score map (ir.NewScores);
	// ownership transfers to the caller, which releases it with
	// ir.ReleaseScores.
	WeightedContentScores(terms []string, weights []float64) (ir.Scores, error)
	ContentTerms(oid uint64) []string
	Thesaurus() *thesaurus.Thesaurus
	RequireIndex() error
	ReinforceLogged(words, concepts []string, relevant bool) error
}

// siteAdapter bridges a SessionSite to the unexported sessionHost and
// dualCodingSite interfaces the session/dual-coding machinery runs over.
type siteAdapter struct{ s SessionSite }

func (a siteAdapter) urlOf(oid bat.OID) string { return a.s.URLOf(uint64(oid)) }

func (a siteAdapter) QueryAnnotations(text string, k int) ([]Hit, error) {
	return a.s.QueryAnnotations(text, k)
}

func (a siteAdapter) QueryContent(clusterWords []string, k int) ([]Hit, error) {
	return a.s.QueryContent(clusterWords, k)
}

func (a siteAdapter) ExpandQuery(text string, topK int) []string {
	return a.s.ExpandQuery(text, topK)
}

func (a siteAdapter) WeightedContentScores(terms []string, weights []float64) (ir.Scores, error) {
	s, err := a.s.WeightedContentScores(terms, weights)
	return s, err
}

func (a siteAdapter) ContentTerms(oid bat.OID) []string { return a.s.ContentTerms(uint64(oid)) }

func (a siteAdapter) Thesaurus() *thesaurus.Thesaurus { return a.s.Thesaurus() }

func (a siteAdapter) requireIndex() error { return a.s.RequireIndex() }

func (a siteAdapter) reinforceLogged(words, concepts []string, relevant bool) error {
	return a.s.ReinforceLogged(words, concepts, relevant)
}

// NewSessionFor starts a relevance-feedback session against an external
// retrieval site (Mirror and ShardedEngine keep their NewSession methods).
func NewSessionFor(site SessionSite, text string) (*Session, error) {
	return newSession(siteAdapter{site}, text)
}

// QueryDualCodingSite runs combined-evidence (dual coding) retrieval
// against an external retrieval site.
func QueryDualCodingSite(site SessionSite, text string, k int) ([]Hit, error) {
	return queryDualCoding(siteAdapter{site}, text, k)
}

// ExpandWith exposes thesaurus query expansion over an externally held
// thesaurus with the exact in-process semantics.
func ExpandWith(thes *thesaurus.Thesaurus, text string, topK int) []string {
	return expandConcepts(thes, text, topK)
}

// HitWorse is the ranked-retrieval total order — score descending, global
// OID ascending on ties — exported for external scatter-gather merges.
func HitWorse(a, b Hit) bool { return hitWorse(a, b) }

// RunLocalExtraction runs pipeline stages 1–3 (segmentation, feature
// extraction, AutoClass clustering) in-process over the given document
// order, returning per-document content words and the frozen codebook. An
// external engine uses it for full builds the way buildIndex does.
func RunLocalExtraction(opts IndexOptions, rasters func(url string) (*media.Image, bool), order []string) (map[string][]string, *Codebook, error) {
	pipe := newLocalPipeline(rasters)
	defer pipe.close()
	return runExtraction(pipe, opts, order)
}

// AssignLocalExtraction extracts features from the given documents and
// assigns them to the frozen codebook's existing clusters — the delta
// half of incremental refresh, as refreshWith runs it.
func AssignLocalExtraction(cb *Codebook, rasters func(url string) (*media.Image, bool), order []string) (map[string][]string, error) {
	pipe := newLocalPipeline(rasters)
	defer pipe.close()
	return assignExtraction(pipe, cb, order)
}
