package core

import (
	"fmt"
	"testing"
)

// TestThetaMemoDifferentialSingle: with the threshold memo enabled (the
// default), every ranking must be hit-for-hit identical to a memo-less
// twin store — on the seeding pass, on the seeded repeat pass, and (the
// cross-epoch guarantee) after AddImage+Refresh publishes a new epoch,
// where a stale seed applied to the new collection could wrongly prune
// documents that now belong in the top k.
func TestThetaMemoDifferentialSingle(t *testing.T) {
	urls, anns := refreshCorpus(40, 3)
	cold := oneShotStub(t, urls[:25], anns[:25])
	cold.SetThetaMemo(0)
	warm := oneShotStub(t, urls[:25], anns[:25])

	assertSameRetrieval(t, "single seeding", cold, warm, 10)
	assertSameRetrieval(t, "single seeded", cold, warm, 10)
	if st := warm.ThetaMemoStats(); st.Hits == 0 {
		t.Fatalf("repeat pass never used a seed, stats = %+v", st)
	}

	for i := 25; i < 40; i++ {
		if err := cold.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
		if err := warm.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	refreshStub(t, cold)
	refreshStub(t, warm)

	// The refresh published a new epoch mid-stream: the previous
	// generation's seeds must be unreachable, so the memoised store
	// re-derives everything against the new snapshot.
	assertSameRetrieval(t, "single post-publish seeding", cold, warm, 10)
	assertSameRetrieval(t, "single post-publish seeded", cold, warm, 10)
}

// TestThetaMemoDifferentialSharded repeats the guarantee over the
// scatter-gather engine for N ∈ {1, 2, 8} shards, where the seed
// pre-raises the threshold shared by every shard's scan.
func TestThetaMemoDifferentialSharded(t *testing.T) {
	urls, anns := refreshCorpus(40, 3)
	for _, shards := range []int{1, 2, 8} {
		build := func() *ShardedEngine {
			e, err := NewSharded(shards)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 25; i++ {
				if err := e.AddImage(urls[i], anns[i], nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
				t.Fatal(err)
			}
			return e
		}
		cold, warm := build(), build()
		cold.SetThetaMemo(0)

		label := fmt.Sprintf("%d shards", shards)
		assertSameRetrieval(t, label+" seeding", cold, warm, 10)
		assertSameRetrieval(t, label+" seeded", cold, warm, 10)
		if st := warm.ThetaMemoStats(); st.Hits == 0 {
			t.Fatalf("%s: repeat pass never used a seed, stats = %+v", label, st)
		}

		for i := 25; i < 40; i++ {
			if err := cold.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
			if err := warm.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		engineRefreshStub(t, cold)
		engineRefreshStub(t, warm)

		assertSameRetrieval(t, label+" post-publish seeding", cold, warm, 10)
		assertSameRetrieval(t, label+" post-publish seeded", cold, warm, 10)
	}
}

// TestThetaMemoUnit exercises the ThetaMemo directly: keying, the entry
// bound, generation sweep, counters, and the disabled (nil) memo.
func TestThetaMemoUnit(t *testing.T) {
	t.Run("nil memo is inert", func(t *testing.T) {
		var tm *ThetaMemo
		tm.put(1, cacheAnnotations, 10, "q", nil, 0.7)
		if _, ok := tm.get(1, cacheAnnotations, 10, "q", nil); ok {
			t.Fatal("nil memo returned a seed")
		}
		tm.sweep(2)
		if st := tm.stats(); st != (ThetaMemoStats{}) {
			t.Fatalf("nil memo stats = %+v", st)
		}
		if newThetaMemo(0) != nil || newThetaMemo(-1) != nil {
			t.Fatal("non-positive bound must disable the memo")
		}
		if th := seededTheta(nil, 1, cacheAnnotations, 10, "q", nil); th != nil {
			t.Fatal("nil memo produced a threshold")
		}
	})

	t.Run("key dimensions", func(t *testing.T) {
		tm := newThetaMemo(1 << 10)
		tm.put(1, cacheAnnotations, 10, "q", nil, 0.7)
		if s, ok := tm.get(1, cacheAnnotations, 10, "q", nil); !ok || s != 0.7 {
			t.Fatalf("exact-key get = (%v,%v)", s, ok)
		}
		for _, miss := range []func() (float64, bool){
			func() (float64, bool) { return tm.get(2, cacheAnnotations, 10, "q", nil) }, // other epoch
			func() (float64, bool) { return tm.get(1, cacheContent, 10, "q", nil) },     // other surface
			func() (float64, bool) { return tm.get(1, cacheAnnotations, 5, "q", nil) },  // other k
			func() (float64, bool) { return tm.get(1, cacheAnnotations, 10, "r", nil) }, // other text
		} {
			if _, ok := miss(); ok {
				t.Fatal("get hit on a differing key dimension — a cross-epoch or cross-query seed would break exactness")
			}
		}
		tm.put(1, cacheContent, 10, "", []string{"c1", "c2"}, 0.5)
		if _, ok := tm.get(1, cacheContent, 10, "", []string{"c1", "c2"}); !ok {
			t.Fatal("terms get missed")
		}
		if _, ok := tm.get(1, cacheContent, 10, "", []string{"c2", "c1"}); ok {
			t.Fatal("terms get ignored order")
		}
	})

	t.Run("entry bound evicts LRU", func(t *testing.T) {
		const bound = 64
		tm := newThetaMemo(bound)
		for i := 0; i < 4096; i++ {
			tm.put(1, cacheAnnotations, 10, fmt.Sprintf("query-%04d", i), nil, 0.5)
		}
		if st := tm.stats(); st.Items > bound {
			t.Fatalf("memo holds %d entries, bound %d", st.Items, bound)
		}
		if _, ok := tm.get(1, cacheAnnotations, 10, "query-4095", nil); !ok {
			t.Fatal("most recently inserted seed was evicted")
		}
	})

	t.Run("sweep drops stale generations", func(t *testing.T) {
		tm := newThetaMemo(1 << 10)
		tm.put(1, cacheAnnotations, 10, "old", nil, 0.7)
		tm.put(2, cacheAnnotations, 10, "new", nil, 0.8)
		tm.sweep(2)
		if _, ok := tm.get(1, cacheAnnotations, 10, "old", nil); ok {
			t.Fatal("swept generation still served")
		}
		if _, ok := tm.get(2, cacheAnnotations, 10, "new", nil); !ok {
			t.Fatal("current generation swept by mistake")
		}
	})

	t.Run("collision guard", func(t *testing.T) {
		e := &thetaEntry{text: "q", terms: []string{"a"}}
		if !e.matches("q", []string{"a"}) {
			t.Fatal("exact surface rejected")
		}
		if e.matches("q", []string{"b"}) || e.matches("p", []string{"a"}) || e.matches("q", nil) {
			t.Fatal("differing surface accepted — a collision could seed with another query's score")
		}
	})

	t.Run("short rankings never seed", func(t *testing.T) {
		tm := newThetaMemo(1 << 10)
		memoTheta(tm, 1, cacheAnnotations, 10, "q", nil, []Hit{{OID: 1, Score: 0.9}})
		if _, ok := tm.get(1, cacheAnnotations, 10, "q", nil); ok {
			t.Fatal("a ranking shorter than k has no exact k-th score; seeding from it is unsafe")
		}
		memoTheta(tm, 1, cacheAnnotations, 1, "q", nil, []Hit{{OID: 1, Score: 0.9}})
		if s, ok := tm.get(1, cacheAnnotations, 1, "q", nil); !ok || s != 0.9 {
			t.Fatalf("full ranking seed = (%v,%v), want (0.9,true)", s, ok)
		}
	})
}
