package core

import (
	"path/filepath"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/corpus"
	"mirror/internal/daemon"
	"mirror/internal/dict"
)

// buildDemo ingests a small deterministic collection and runs the local
// pipeline once; it is shared across the tests in this file.
func buildDemo(t *testing.T, n int) (*Mirror, []*corpus.Item) {
	t.Helper()
	items := corpus.Generate(corpus.Config{N: n, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"} // keep tests fast
	opts.KMax = 6
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	return m, items
}

func TestIngestAndIndex(t *testing.T) {
	m, items := buildDemo(t, 24)
	if m.Size() != 24 {
		t.Fatalf("size = %d", m.Size())
	}
	if !m.Indexed() {
		t.Fatal("index flag not set")
	}
	// every item gained content terms
	for i := range items {
		if len(m.ContentTerms(bat.OID(i))) == 0 {
			t.Fatalf("item %d has no content terms", i)
		}
	}
	if m.Thes == nil || len(m.Thes.Concepts()) == 0 {
		t.Fatal("thesaurus not built")
	}
	if err := m.AddImage(items[0].URL, "", items[0].Scene.Img); err == nil {
		t.Fatal("duplicate URL should fail")
	}
}

func TestQueryBeforeIndexFails(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryAnnotations("ocean", 5); err == nil {
		t.Fatal("query before indexing should fail")
	}
}

func TestQueryAnnotationsRanking(t *testing.T) {
	m, items := buildDemo(t, 24)
	// choose a class that occurs in the collection with annotations
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	hits, err := m.QueryAnnotations(term, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// the top hit must actually contain the class (its annotation mentions
	// the canonical term, so belief ≫ default)
	top := items[hits[0].OID]
	if !top.HasClass(class) {
		t.Fatalf("top hit %d (%s) lacks class %s", hits[0].OID, top.Annotation, term)
	}
	if hits[0].URL != top.URL {
		t.Fatalf("hit URL %q != item URL %q", hits[0].URL, top.URL)
	}
	// scores are non-increasing
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestExpandQueryAndContentQuery(t *testing.T) {
	m, items := buildDemo(t, 24)
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	clusters := m.ExpandQuery(term, 4)
	if len(clusters) == 0 {
		t.Fatalf("thesaurus expansion of %q empty", term)
	}
	hits, err := m.QueryContent(clusters, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("content query returned nothing")
	}
}

func TestDualCodingFindsUnannotated(t *testing.T) {
	// Dual coding's promise: a text query can retrieve UNANNOTATED images
	// whose visual content matches, via the thesaurus.
	m, items := buildDemo(t, 36)
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	hits, err := m.QueryDualCoding(term, len(items))
	if err != nil {
		t.Fatal(err)
	}
	// find the rank of the best unannotated item containing the class
	bestUnann := -1
	for rank, h := range hits {
		it := items[h.OID]
		if it.Annotation == "" && it.HasClass(class) {
			bestUnann = rank
			break
		}
	}
	hasUnannotatedWithClass := false
	for _, it := range items {
		if it.Annotation == "" && it.HasClass(class) {
			hasUnannotatedWithClass = true
		}
	}
	if hasUnannotatedWithClass && bestUnann == -1 {
		t.Fatal("dual coding never surfaced an unannotated in-class item")
	}
}

func TestSessionFeedbackImproves(t *testing.T) {
	m, items := buildDemo(t, 36)
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	sess, err := m.NewSession(term)
	if err != nil {
		t.Fatal(err)
	}
	relevant := func(h Hit) bool { return items[h.OID].HasClass(class) }

	// Feedback's contribution shows on the UNANNOTATED items, where text
	// evidence is silent and only the learned content weights rank: measure
	// precision over the unannotated portion of the ranking.
	unannPrecision := func(hits []Hit, k int) float64 {
		var un []Hit
		for _, h := range hits {
			if items[h.OID].Annotation == "" {
				un = append(un, h)
			}
		}
		return PrecisionAtK(un, k, relevant)
	}

	hits0, err := sess.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	p0 := unannPrecision(hits0, 5)

	// the user judges the visible top 12 over two rounds
	for round := 0; round < 2; round++ {
		hits, err := sess.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		var rel, nonrel []bat.OID
		for _, h := range hits {
			if relevant(h) {
				rel = append(rel, h.OID)
			} else {
				nonrel = append(nonrel, h.OID)
			}
		}
		if err := sess.Feedback(rel, nonrel); err != nil {
			t.Fatal(err)
		}
	}
	hits2, err := sess.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	p2 := unannPrecision(hits2, 5)
	if p2 < p0 {
		t.Fatalf("feedback degraded unannotated precision: %v → %v", p0, p2)
	}
	if sess.Round != 2 {
		t.Fatalf("round = %d", sess.Round)
	}
	if err := sess.Feedback(nil, nil); err == nil {
		t.Fatal("empty feedback should error")
	}
	terms, ws := sess.ClusterWeights()
	if len(terms) != len(ws) || len(terms) == 0 {
		t.Fatalf("cluster weights: %v %v", terms, ws)
	}
}

func TestRawMoaQueryThroughCore(t *testing.T) {
	m, _ := buildDemo(t, 12)
	res, err := m.Query(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 12 {
		t.Fatalf("count = %v", res.Scalar)
	}
	res, err = m.Query(`
		map[sum(THIS)](
			map[getBL(THIS.annotation, query, stats)](ImageLibraryInternal));`,
		AnalyzeQuery("ocean"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, items := buildDemo(t, 16)
	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)
	before, err := m.QueryAnnotations(term, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Size() != 16 || !m2.Indexed() {
		t.Fatalf("loaded size=%d indexed=%v", m2.Size(), m2.Indexed())
	}
	after, err := m2.QueryAnnotations(term, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("hit counts differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].OID != after[i].OID || before[i].Score != after[i].Score {
			t.Fatalf("hit %d differs after reload: %+v vs %+v", i, before[i], after[i])
		}
	}
	// thesaurus survived
	if m2.Thes == nil || len(m2.ExpandQuery(term, 3)) == 0 {
		t.Fatal("thesaurus lost in round trip")
	}
	// raster re-attachment
	if err := m2.AddRaster(items[0].URL, items[0].Scene.Img); err != nil {
		t.Fatal(err)
	}
	if err := m2.AddRaster("http://nope", items[0].Scene.Img); err == nil {
		t.Fatal("AddRaster for unknown URL should fail")
	}
}

func TestDistributedPipelineMatchesLocal(t *testing.T) {
	items := corpus.Generate(corpus.Config{N: 10, W: 32, H: 32, Seed: 21, AnnotateRate: 1})
	mkMirror := func() *Mirror {
		m, err := New()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse"}
	opts.KMax = 4

	local := mkMirror()
	if err := local.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}

	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopDict()
	handles, err := daemon.StartDemoDaemons(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, h := range handles {
			h.Stop()
		}
	}()
	remote := mkMirror()
	if err := remote.BuildContentIndexDistributed(opts, dictAddr); err != nil {
		t.Fatal(err)
	}

	// both pipelines are deterministic and must agree exactly
	for i := 0; i < len(items); i++ {
		lt := local.ContentTerms(bat.OID(i))
		rt := remote.ContentTerms(bat.OID(i))
		if len(lt) != len(rt) {
			t.Fatalf("item %d: %v vs %v", i, lt, rt)
		}
		for j := range lt {
			if lt[j] != rt[j] {
				t.Fatalf("item %d term %d: %q vs %q", i, j, lt[j], rt[j])
			}
		}
	}
}

func TestServeAndClient(t *testing.T) {
	m, items := buildDemo(t, 12)
	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopDict()
	_, stop, err := m.Serve("127.0.0.1:0", dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	c, err := DiscoverMirror(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	schema, err := c.Schema()
	if err != nil || schema == "" {
		t.Fatalf("schema: %q, %v", schema, err)
	}
	class := mostAnnotatedClass(items)
	hits, err := c.TextQuery(corpus.CanonicalTerm(class), 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].URL == "" {
		t.Fatalf("hits = %v", hits)
	}
	dual, err := c.TextQuery(corpus.CanonicalTerm(class), 5, true)
	if err != nil || len(dual) == 0 {
		t.Fatalf("dual hits: %v, %v", dual, err)
	}
	reply, err := c.MoaQuery(`count(ImageLibraryInternal);`, nil)
	if err != nil || reply.Scalar != "12" {
		t.Fatalf("moa count over wire = %+v, %v", reply, err)
	}
	if _, err := c.MoaQuery(`bogus syntax(`, nil); err == nil {
		t.Fatal("bad query should propagate an error")
	}
}

// mostAnnotatedClass picks the class that appears in the most annotated
// items, so ranking tests have enough signal.
func mostAnnotatedClass(items []*corpus.Item) int {
	counts := map[int]int{}
	for _, it := range items {
		if it.Annotation == "" {
			continue
		}
		for _, c := range it.Classes {
			counts[c]++
		}
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}
