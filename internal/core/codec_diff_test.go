package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// Raw-vs-block codec differential tests: the same corpus, indexed the
// same way (batch build plus the same interleaving of delta refreshes,
// with whatever merges the compaction policy triggers), must answer
// every retrieval BUN-for-BUN identically whether the postings segments
// are stored raw or block-compressed. Beliefs survive the block codec
// bit-exact and the block-max bounds are quantized conservatively, so
// any divergence here is a pruning bug, not an accepted approximation.

// buildStubWithCodec builds one store over the corpus under the given
// codec: batch over a prefix, then delta refreshes over rng-chosen cut
// points (identical across codecs for equal seeds).
func buildStubWithCodec(t *testing.T, codec string, urls, anns []string, seed int64) *Mirror {
	t.Helper()
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetStoreCodec(codec); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(urls)
	batch := 1 + rng.Intn(n-1)
	for i := 0; i < batch; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	for at := batch; at < n; {
		step := 1 + rng.Intn(n-at)
		for i := at; i < at+step; i++ {
			if err := m.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		at += step
		refreshStub(t, m)
	}
	return m
}

// storeCodecOf reports the (uniform) segment codec a retriever's stores
// actually hold, failing on a mix.
func storeCodecOf(t *testing.T, r interface{ PostingsStats() PostingsStats }, want string) {
	t.Helper()
	seen := false
	for _, pi := range r.PostingsStats().Stores {
		if pi.Segments == 0 {
			continue
		}
		seen = true
		if pi.Codec != want {
			t.Fatalf("%s stored as %q, want %q", pi.Prefix, pi.Codec, want)
		}
	}
	if !seen {
		t.Fatal("no segmented stores to check")
	}
}

// TestBlockCodecEqualsRawSingleStore: single store, segmented by delta
// refreshes (and compacted by the merge policy), raw ≡ block.
func TestBlockCodecEqualsRawSingleStore(t *testing.T) {
	for round := 0; round < 4; round++ {
		rng := rand.New(rand.NewSource(int64(500 + round)))
		n := 20 + rng.Intn(25)
		urls, anns := refreshCorpus(n, int64(900+round))
		seed := int64(40 + round)
		raw := buildStubWithCodec(t, "raw", urls, anns, seed)
		blk := buildStubWithCodec(t, "block", urls, anns, seed)
		storeCodecOf(t, raw, "raw")
		storeCodecOf(t, blk, "block")
		label := fmt.Sprintf("round %d (%d docs)", round, n)
		assertSameRetrieval(t, label, raw, blk, 10)
		assertSameRetrieval(t, label+" full-ranking", raw, blk, 0)
	}
}

// TestBlockCodecEqualsRawSharded extends the guarantee across shard
// counts N ∈ {1, 2, 8}, with per-shard segment directories built by the
// same delta interleavings.
func TestBlockCodecEqualsRawSharded(t *testing.T) {
	const n = 30
	urls, anns := refreshCorpus(n, 17)
	for _, shards := range []int{1, 2, 8} {
		build := func(codec string) *ShardedEngine {
			e, err := NewSharded(shards)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.SetStoreCodec(codec); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(60 + shards)))
			batch := 8 + rng.Intn(10)
			for i := 0; i < batch; i++ {
				if err := e.AddImage(urls[i], anns[i], nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
				t.Fatal(err)
			}
			for at := batch; at < n; {
				step := 1 + rng.Intn(n-at)
				for i := at; i < at+step; i++ {
					if err := e.AddImage(urls[i], anns[i], nil); err != nil {
						t.Fatal(err)
					}
				}
				at += step
				engineRefreshStub(t, e)
			}
			return e
		}
		raw := build("raw")
		blk := build("block")
		storeCodecOf(t, raw, "raw")
		storeCodecOf(t, blk, "block")
		label := fmt.Sprintf("%d shards", shards)
		assertSameRetrieval(t, label, raw, blk, 10)
		assertSameRetrieval(t, label+" full-ranking", raw, blk, 0)
	}
}

// TestCodecConversionRoundTrips: converting a built store raw→block→raw
// in place (the EnsureCodec path every persistent open and refresh uses)
// leaves retrieval BUN-for-BUN unchanged at every step.
func TestCodecConversionRoundTrips(t *testing.T) {
	urls, anns := refreshCorpus(28, 23)
	ref := buildStubWithCodec(t, "raw", urls, anns, 77)
	m := buildStubWithCodec(t, "raw", urls, anns, 77)

	convert := func(codec string) {
		t.Helper()
		if err := m.SetStoreCodec(codec); err != nil {
			t.Fatal(err)
		}
		m.mu.Lock()
		err := m.ensureCodecLocked()
		if err == nil {
			err = m.publishEpochLocked()
		}
		m.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}

	convert("block")
	storeCodecOf(t, m, "block")
	assertSameRetrieval(t, "raw->block", ref, m, 10)
	convert("raw")
	storeCodecOf(t, m, "raw")
	assertSameRetrieval(t, "raw->block->raw", ref, m, 10)
}
