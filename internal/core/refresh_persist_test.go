package core

import (
	"fmt"
	"testing"
)

// Recovery of online-indexed stores: WAL publish/merge records replay the
// incremental history on top of the last checkpoint, so a restart serves
// exactly the state the crashed process had published.

// openStubPersistent opens a persistent store, ingests docs[:batch] and
// runs the stub full build.
func openStubPersistent(t *testing.T, dir string, urls, anns []string, batch int) *Mirror {
	t.Helper()
	m, _, err := OpenPersistent(PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRecoveryReplaysPublishesToExactEpoch crashes (closes without a
// final checkpoint) after several delta publishes and merges, recovers,
// and requires the recovered store to answer BUN-for-BUN like a one-shot
// build over the full corpus — i.e. exactly like the pre-crash epoch.
func TestRecoveryReplaysPublishesToExactEpoch(t *testing.T) {
	const n, batch = 28, 10
	urls, anns := refreshCorpus(n, 11)
	dir := t.TempDir()

	m := openStubPersistent(t, dir, urls, anns, batch)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Three delta publishes after the checkpoint: only the WAL holds them.
	var preSeq int64
	for _, hi := range []int{16, 17, n} {
		for i := m.Size(); i < hi; i++ {
			if err := m.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		st := refreshStub(t, m)
		preSeq = st.Epoch
	}
	preSegs := m.maxSegments()
	if err := m.ClosePersistent(); err != nil {
		t.Fatal(err)
	}

	re, stats, err := OpenPersistent(PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	if !re.Indexed() || !re.Current() {
		t.Fatalf("recovered Indexed=%v Current=%v, want true/true", re.Indexed(), re.Current())
	}
	if re.covered() != n {
		t.Fatalf("recovered %d covered docs, want %d", re.covered(), n)
	}
	if got := re.currentEpoch().Seq; got < preSeq {
		t.Fatalf("recovered epoch %d went backwards from %d", got, preSeq)
	}
	if got := re.maxSegments(); got != preSegs {
		t.Fatalf("recovered %d segments, want the pre-crash %d (merge replay)", got, preSegs)
	}
	if stats.WALRecords == 0 {
		t.Fatal("recovery replayed nothing; the publishes were lost")
	}
	ref := oneShotStub(t, urls, anns)
	assertSameRetrieval(t, "recovered store", ref, re, 10)

	// And the store stays refreshable: the codebook survived the restart.
	if err := re.AddImage("img://post-restart", "harbor lantern", nil); err != nil {
		t.Fatal(err)
	}
	if st := refreshStub(t, re); st.NewDocs != 1 {
		t.Fatalf("post-restart refresh covered %d docs, want 1", st.NewDocs)
	}
}

// TestRecoveryDropsIndexOnUnloggedRebuild pins the base-mismatch guard: a
// full BuildContentIndex is deliberately not WAL-logged (it would carry
// the whole corpus), so a later delta publish record that no longer
// applies must drop the index rather than corrupt it — the store recovers
// unindexed and is rebuilt by the operator path.
func TestRecoveryDropsIndexOnUnloggedRebuild(t *testing.T) {
	const n, batch = 18, 10
	urls, anns := refreshCorpus(n, 13)
	dir := t.TempDir()

	m := openStubPersistent(t, dir, urls, anns, batch)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := batch; i < 15; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Full rebuild (re-clusters, resets the internal set) — not logged.
	if err := m.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	// A delta publish on top of the rebuild: its base (15) contradicts
	// the checkpointed internal set (10).
	for i := 15; i < n; i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	refreshStub(t, m)
	if err := m.ClosePersistent(); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenPersistent(PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	if re.Indexed() {
		t.Fatal("an inapplicable delta must drop the index, not guess")
	}
	if re.Size() != n {
		t.Fatalf("library lost documents: %d of %d", re.Size(), n)
	}
	// The drop is recoverable: a rebuild re-indexes everything.
	if err := re.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	ref := oneShotStub(t, urls, anns)
	assertSameRetrieval(t, "rebuilt-after-drop", ref, re, 10)
}

// TestShardedRecoveryFinishesDeferredPublishes crashes a sharded engine
// after delta publishes, recovers, and requires exact one-shot-equivalent
// answers: shard-level replay is structural (inserts), and the engine
// re-registers global statistics to finish every shard's publish.
func TestShardedRecoveryFinishesDeferredPublishes(t *testing.T) {
	const n, batch, shards = 26, 12, 4
	urls, anns := refreshCorpus(n, 17)
	dir := t.TempDir()

	e, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if err := e.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, hi := range []int{18, n} {
		for i := e.Size(); i < hi; i++ {
			if err := e.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		engineRefreshStub(t, e)
	}
	if err := e.ClosePersistent(); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	if !re.Indexed() || !re.Current() {
		t.Fatalf("recovered engine Indexed=%v Current=%v, want true/true", re.Indexed(), re.Current())
	}
	ref := oneShotStub(t, urls, anns)
	assertSameRetrieval(t, fmt.Sprintf("recovered %d-shard engine", shards), ref, re, 10)
	assertSameRetrieval(t, "recovered sharded full", ref, re, 0)

	// Still refreshable post-restart.
	if err := re.AddImage("img://post-restart", "gull anchor", nil); err != nil {
		t.Fatal(err)
	}
	if st := engineRefreshStub(t, re); st.NewDocs != 1 {
		t.Fatalf("post-restart engine refresh covered %d docs, want 1", st.NewDocs)
	}
}
