package core

import (
	"sync"

	"mirror/internal/bat"
)

// Streamed threshold propagation: the distributed half of the threshold
// lifecycle.
//
// A router's scatter sends every shard leg the threshold height known at
// SEND time (ShardQueryArgs.ThetaFloor). On skewed shards that floor goes
// stale immediately: one shard's scan finds high-scoring documents early,
// but sibling legs keep scanning against the floor they left with. The
// scan registry closes that gap — a leg that carries a router-chosen
// ScanID exposes its live *bat.TopKThreshold here for the duration of the
// scan, and the Mirror.RaiseTheta RPC lifts it mid-flight whenever the
// router's merged view rises. Raise is monotone and pruning-only (the
// router only streams values at or below the global k-th best score), so
// a raise landing at any point during the scan never changes the result,
// only how much of the postings it can skip.
//
// The registry maps one id to a LIST of thresholds: a timed-out leg may
// be retried on another replica of the same process (tests run whole
// clusters in one process) while the first scan is still draining, and a
// raise must reach every scan still running under the id. Unknown ids
// are a benign no-op — the scan already finished, or this replica never
// served the leg (the router broadcasts to the whole replica set because
// failover means it cannot know which member the leg landed on).

var scanThetas = struct {
	sync.Mutex
	m map[uint64][]*bat.TopKThreshold
}{m: map[uint64][]*bat.TopKThreshold{}}

// registerScanTheta exposes an in-flight scan's threshold under id; the
// returned func deregisters exactly that registration.
func registerScanTheta(id uint64, th *bat.TopKThreshold) func() {
	scanThetas.Lock()
	scanThetas.m[id] = append(scanThetas.m[id], th)
	scanThetas.Unlock()
	return func() {
		scanThetas.Lock()
		defer scanThetas.Unlock()
		ths := scanThetas.m[id]
		for i, t := range ths {
			if t == th {
				ths[i] = ths[len(ths)-1]
				ths = ths[:len(ths)-1]
				break
			}
		}
		if len(ths) == 0 {
			delete(scanThetas.m, id)
		} else {
			scanThetas.m[id] = ths
		}
	}
}

// raiseScanTheta lifts every scan registered under id to at least v.
// Raise is a lock-free CAS, so holding the registry lock across the loop
// is fine — nothing here waits on the scans.
func raiseScanTheta(id uint64, v float64) {
	scanThetas.Lock()
	for _, th := range scanThetas.m[id] {
		th.Raise(v)
	}
	scanThetas.Unlock()
}
