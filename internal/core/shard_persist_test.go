package core

import (
	"os"
	"path/filepath"
	"testing"

	"mirror/internal/corpus"
)

// Sharded persistence: every shard is its own BAT buffer pool + WAL, the
// layout is a stored property of the shard manifests, and recovery is
// per-shard (checkpoint + WAL tail) with the engine re-deriving the
// global mapping from shard-local identities.

func shardedIndexOpts() IndexOptions {
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse"}
	opts.KMax = 4
	return opts
}

// openShardedDemo opens a sharded store in dir and ingests/indexes the
// first n items.
func openShardedDemo(t *testing.T, dir string, shards, n int) (*ShardedEngine, []*corpus.Item) {
	t.Helper()
	items := corpus.Generate(corpus.Config{N: n + 8, W: 48, H: 48, Seed: 5, AnnotateRate: 0.8})
	e, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:n] {
		if err := e.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.BuildContentIndex(shardedIndexOpts()); err != nil {
		t.Fatal(err)
	}
	return e, items
}

func TestShardedPersistRoundtrip(t *testing.T) {
	dir := t.TempDir()
	e, items := openShardedDemo(t, dir, 2, 12)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// two more inserts reach only the WALs
	for _, it := range items[12:14] {
		if err := e.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	wantURLs := e.URLs()
	if err := e.ClosePersistent(); err != nil {
		t.Fatal(err)
	}

	// Shards: 0 adopts the stored layout.
	re, stats, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	if stats.Shards != 2 {
		t.Fatalf("recovered %d shards, want 2", stats.Shards)
	}
	if stats.WALRecords != 2 {
		t.Fatalf("replayed %d WAL records, want 2", stats.WALRecords)
	}
	if re.Size() != 14 {
		t.Fatalf("recovered %d docs, want 14", re.Size())
	}
	gotURLs := re.URLs()
	for i := range wantURLs {
		if wantURLs[i] != gotURLs[i] {
			t.Fatalf("URL order diverged at %d: %q vs %q", i, wantURLs[i], gotURLs[i])
		}
	}
	// The WAL-tail inserts are pending, not index-destroying: the
	// recovered epoch keeps serving the 12 checkpointed documents until a
	// Refresh or rebuild covers the tail.
	if !re.Indexed() {
		t.Fatal("recovered engine lost its index")
	}
	if re.Current() {
		t.Fatal("recovered epoch should not cover the WAL-tail inserts")
	}
	for _, it := range items[:14] {
		if err := re.AddRaster(it.URL, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.BuildContentIndex(shardedIndexOpts()); err != nil {
		t.Fatal(err)
	}
	if !re.Current() {
		t.Fatal("rebuild should cover every ingested document")
	}
	hits, err := re.QueryAnnotations("scene", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits after recovery + reindex")
	}
}

// TestShardedLayoutIsStored: the shard count comes from the manifests; a
// contradicting request is refused, and a standalone store cannot be
// opened sharded.
func TestShardedLayoutIsStored(t *testing.T) {
	dir := t.TempDir()
	e, _ := openShardedDemo(t, dir, 3, 6)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.ClosePersistent(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir, Shards: 2}); err == nil {
		t.Fatal("mismatched shard count should be refused")
	}
	re, stats, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	re.ClosePersistent()
	if stats.Shards != 3 {
		t.Fatalf("got %d shards", stats.Shards)
	}

	// a standalone store is not a sharded root
	solo := t.TempDir()
	m, _, err := OpenPersistent(PersistOptions{Dir: solo})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.ClosePersistent()
	if _, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: solo, Shards: 2}); err == nil {
		t.Fatal("standalone store opened as sharded root")
	}
	// and a shard member refuses to reopen under a different identity
	if _, _, err := OpenPersistent(PersistOptions{
		Dir: filepath.Join(dir, shardDirName(0)), ShardIndex: 1, ShardCount: 3,
	}); err == nil {
		t.Fatal("shard 0 reopened as shard 1")
	}
}

// TestShardedTornWAL: garbage appended to one shard's WAL (the expected
// crash shape) is truncated on recovery; the other shards' tails survive,
// and the engine reports which shard was torn.
func TestShardedTornWAL(t *testing.T) {
	dir := t.TempDir()
	e, items := openShardedDemo(t, dir, 2, 10)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, it := range items[10:14] {
		if err := e.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	// find a shard that received at least one WAL-tail insert
	torn := -1
	for i := 0; i < 2; i++ {
		wal := filepath.Join(dir, shardDirName(i), "wal.log")
		if fi, err := os.Stat(wal); err == nil && fi.Size() > 0 {
			torn = i
			break
		}
	}
	if torn < 0 {
		t.Fatal("no shard got a WAL-tail insert")
	}
	if err := e.ClosePersistent(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, shardDirName(torn), "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99\x00garbage-torn-tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, stats, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	if len(stats.TornTails) != 1 || stats.TornTails[0] != torn {
		t.Fatalf("torn tails = %v, want [%d]", stats.TornTails, torn)
	}
	// checkpoint + valid WAL prefix: all 14 docs survive (the garbage
	// followed the last valid record)
	if re.Size() != 14 {
		t.Fatalf("recovered %d docs, want 14", re.Size())
	}
}

// TestShardedLostWALTail: one shard loses its entire WAL tail (crash
// without -wal-sync before any checkpoint of those inserts). Recovery
// keeps the surviving documents under their original global identity —
// the lost documents leave gaps, never renumbering.
func TestShardedLostWALTail(t *testing.T) {
	dir := t.TempDir()
	e, items := openShardedDemo(t, dir, 2, 10)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var tailURLs []string
	for _, it := range items[10:16] {
		if err := e.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
		tailURLs = append(tailURLs, it.URL)
	}
	// count the tail docs per shard before the "crash"
	perShard := map[int]int{}
	for _, u := range tailURLs {
		perShard[e.shardFor(u)]++
	}
	lost := -1
	for s, c := range perShard {
		if c > 0 {
			lost = s
			break
		}
	}
	if lost < 0 {
		t.Skip("tail landed on no shard")
	}
	if err := e.ClosePersistent(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, shardDirName(lost), "wal.log"), 0); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenShardedPersistent(ShardedPersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersistent()
	want := 16 - perShard[lost]
	if re.Size() != want {
		t.Fatalf("recovered %d docs, want %d (lost %d)", re.Size(), want, perShard[lost])
	}
	// surviving docs keep their URLs and identities; lost ones are gone
	lostSet := map[string]bool{}
	for _, u := range tailURLs {
		if re.shardFor(u) == lost {
			lostSet[u] = true
		}
	}
	for _, u := range re.URLs() {
		if lostSet[u] {
			t.Fatalf("lost document %q resurfaced", u)
		}
	}
}
