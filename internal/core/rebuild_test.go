package core

import (
	"testing"

	"mirror/internal/corpus"
)

// TestRebuildIndexAfterNewImages exercises the maintenance path: new
// footage arrives, the daemons re-run, the internal schema is rebuilt from
// scratch (as the prototype's daemons did when the collection changed).
func TestRebuildIndexAfterNewImages(t *testing.T) {
	items := corpus.Generate(corpus.Config{N: 20, W: 48, H: 48, Seed: 23, AnnotateRate: 1})
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse"}
	opts.KMax = 4

	for _, it := range items[:12] {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	res, err := m.Query(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 12 {
		t.Fatalf("internal count = %v", res.Scalar)
	}

	// more images arrive; the index is stale until rebuilt
	for _, it := range items[12:] {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	// Inserts no longer un-index the store: the published epoch keeps
	// serving (snapshot isolation), the new documents are merely pending.
	if !m.Indexed() {
		t.Fatal("inserts must not un-index the store")
	}
	if m.Current() {
		t.Fatal("epoch should not cover the new inserts yet")
	}
	if hits, err := m.QueryAnnotations("ocean", 3); err != nil {
		t.Fatalf("pending inserts must not break queries: %v", err)
	} else {
		for _, h := range hits {
			if int(h.OID) >= 12 {
				t.Fatalf("query over the pinned epoch returned pending document %d", h.OID)
			}
		}
	}
	// The snapshot still counts 12 documents even though 20 are ingested.
	res, err = m.Query(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 12 {
		t.Fatalf("epoch-internal count = %v, want 12", res.Scalar)
	}
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	res, err = m.Query(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar.(int64) != 20 {
		t.Fatalf("internal count after rebuild = %v", res.Scalar)
	}
	hits, err := m.QueryAnnotations(corpus.CanonicalTerm(items[19].Classes[0]), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("rebuilt index returned no hits")
	}
	// new items are reachable
	found := false
	for _, h := range hits {
		if int(h.OID) >= 12 {
			found = true
		}
	}
	// (not guaranteed for every class, but the queried class comes from a
	// late item, so at least its own document must rank)
	if !found {
		for _, h := range hits {
			t.Logf("hit %d %s %f", h.OID, h.URL, h.Score)
		}
		t.Fatal("no late item reachable after rebuild")
	}
}

// TestConcurrentQueriesAgainstCore runs parallel read queries against one
// indexed instance (single-writer/multi-reader contract).
func TestConcurrentQueriesAgainstCore(t *testing.T) {
	m, items := buildDemo(t, 16)
	term := corpus.CanonicalTerm(mostAnnotatedClass(items))
	want, err := m.QueryAnnotations(term, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 6)
	for g := 0; g < 6; g++ {
		go func() {
			for i := 0; i < 15; i++ {
				hits, err := m.QueryAnnotations(term, 5)
				if err != nil {
					done <- err
					return
				}
				if len(hits) != len(want) || hits[0].OID != want[0].OID {
					done <- errMismatch{}
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 6; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent query results diverged" }
