package core

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mirror/internal/corpus"
)

// preBlockFixture is a committed store checkpointed in the pre-block-
// codec format: raw postings columns, manifest version 2 (the version
// every release before the block codec wrote). The cross-version tests
// below pin that today's binary still opens it, converts it losslessly,
// and answers queries identically before and after conversion.
const preBlockFixture = "testdata/store-v2-raw"

// preBlockFixtureCorpus regenerates the exact corpus the fixture was
// built from (corpus generation is seed-deterministic).
func preBlockFixtureCorpus() []*corpus.Item {
	return corpus.Generate(corpus.Config{N: 14, W: 48, H: 48, Seed: 7, AnnotateRate: 0.8})
}

// TestRegenPreBlockFixture rebuilds the committed fixture. Guarded: it
// only runs when MIRROR_REGEN_FIXTURES is set (regenerating rewrites
// testdata, which is otherwise immutable history).
func TestRegenPreBlockFixture(t *testing.T) {
	if os.Getenv("MIRROR_REGEN_FIXTURES") == "" {
		t.Skip("set MIRROR_REGEN_FIXTURES=1 to regenerate the committed fixture")
	}
	if err := os.RemoveAll(preBlockFixture); err != nil {
		t.Fatal(err)
	}
	m, _, err := OpenPersistent(PersistOptions{Dir: preBlockFixture, Verify: true, StoreCodec: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range preBlockFixtureCorpus() {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultIndexOptions()
	opts.Features = []string{"rgb_coarse", "gabor"}
	opts.KMax = 5
	if err := m.BuildContentIndex(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.ClosePersistent(); err != nil {
		t.Fatal(err)
	}
	// Stamp the manifest back to version 2 — exactly what a pre-block
	// release wrote for a store without bytes-kind columns (the raw
	// codec uses none). The manifest is plain JSON with no self-CRC.
	stampManifestVersion(t, preBlockFixture, 2)
}

func stampManifestVersion(t *testing.T, dir string, v int) {
	t.Helper()
	path := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	man["version"] = v
	out, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func manifestVersion(t *testing.T, dir string) int {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	return man.Version
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, sp, dp)
			continue
		}
		in, err := os.Open(sp)
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(dp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func fixtureCodec(t *testing.T, m *Mirror) string {
	t.Helper()
	ps := m.PostingsStats()
	codec := ""
	for _, pi := range ps.Stores {
		if pi.Segments == 0 {
			continue
		}
		switch {
		case codec == "":
			codec = pi.Codec
		case codec != pi.Codec:
			t.Fatalf("stores disagree on codec: %q vs %q", codec, pi.Codec)
		}
	}
	return codec
}

// TestPreBlockFixtureOpensAndConverts is the cross-version guarantee:
// a store checkpointed by a pre-block-codec release (manifest v2, raw
// postings) opens under today's default, converts to the block layout
// in memory, answers the same queries hit-for-hit, and persists the
// converted layout (manifest v3) at the next checkpoint.
func TestPreBlockFixtureOpensAndConverts(t *testing.T) {
	if _, err := os.Stat(preBlockFixture); err != nil {
		t.Fatalf("committed fixture missing (regenerate with MIRROR_REGEN_FIXTURES=1): %v", err)
	}
	if v := manifestVersion(t, preBlockFixture); v != 2 {
		t.Fatalf("fixture manifest version = %d, want 2 (the fixture must stay pre-compression)", v)
	}
	dir := filepath.Join(t.TempDir(), "store")
	copyTree(t, preBlockFixture, dir)

	text := corpus.CanonicalTerm(mostAnnotatedClass(preBlockFixtureCorpus()))

	// Pass 1: open in the layout the store was written in — the raw
	// baseline every later pass must match hit-for-hit.
	m, _, err := OpenPersistent(PersistOptions{Dir: dir, Verify: true, StoreCodec: "raw"})
	if err != nil {
		t.Fatalf("open fixture raw: %v", err)
	}
	if !m.Indexed() {
		t.Fatal("fixture recovered unindexed")
	}
	if got := fixtureCodec(t, m); got != "raw" {
		t.Fatalf("fixture stores codec %q, want raw", got)
	}
	want, err := m.QueryDualCoding(text, 8)
	if err != nil || len(want) == 0 {
		t.Fatalf("baseline query: %v (%d hits)", err, len(want))
	}
	m.ClosePersistent()

	// Pass 2: open under the default block codec — recovery converts.
	m2, _, err := OpenPersistent(PersistOptions{Dir: dir, Verify: true})
	if err != nil {
		t.Fatalf("open fixture under block codec: %v", err)
	}
	if got := fixtureCodec(t, m2); got != "block" {
		t.Fatalf("recovered store codec %q, want block (conversion at open)", got)
	}
	got, err := m2.QueryDualCoding(text, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertSameHits(t, "converted", want, got)
	// Footprint accounting is live after conversion. (No compression
	// assertion here: at 14 documents the per-block directories dominate;
	// the ≥3x ratio is pinned at scale by the query benchmark.)
	ps := m2.PostingsStats()
	for _, pi := range ps.Stores {
		if pi.Segments > 0 && (pi.Bytes <= 0 || pi.RawBytes <= 0) {
			t.Errorf("%s: footprint not reported: %+v", pi.Prefix, pi)
		}
	}
	if _, err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m2.ClosePersistent()
	if v := manifestVersion(t, dir); v != 3 {
		t.Fatalf("post-conversion checkpoint wrote manifest version %d, want 3", v)
	}

	// Pass 3: the converted store reopens from disk (block columns now
	// come through the pool) and still answers identically.
	m3, _, err := OpenPersistent(PersistOptions{Dir: dir, Verify: true})
	if err != nil {
		t.Fatalf("reopen converted store: %v", err)
	}
	defer m3.ClosePersistent()
	got3, err := m3.QueryDualCoding(text, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertSameHits(t, "reopened", want, got3)
}

func assertSameHits(t *testing.T, label string, want, got []Hit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].OID != got[i].OID || want[i].Score != got[i].Score || want[i].URL != got[i].URL {
			t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}
