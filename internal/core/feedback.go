package core

import (
	"fmt"
	"sort"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/thesaurus"
)

// Session is an interactive retrieval session with relevance feedback, the
// loop of Section 5.2: "The user may provide relevance feedback for these
// images; this relevance feedback is used to improve the current query."
//
// The session query has a text part (fixed) and a content part: weighted
// cluster words, initialised from the thesaurus and updated from feedback
// Rocchio-style (relevant items add their cluster words' weight,
// non-relevant subtract).
type Session struct {
	m         sessionHost
	Text      string
	textTerms []string
	weights   map[string]float64 // cluster word → weight
	Round     int

	// Rocchio-style gains: Alpha scales the original text query's
	// evidence when Run combines it with the weighted content evidence;
	// Beta/Gamma are the per-judgment feedback gains Feedback applies.
	Alpha, Beta, Gamma float64
}

// sessionHost is the store surface a feedback session drives; Mirror (one
// store) and ShardedEngine (scatter-gather over many) both provide it.
type sessionHost interface {
	urlResolver
	QueryAnnotations(text string, k int) ([]Hit, error)
	WeightedContentScores(terms []string, weights []float64) (ir.Scores, error)
	ContentTerms(oid bat.OID) []string
	Thesaurus() *thesaurus.Thesaurus
	requireIndex() error
	reinforceLogged(words, concepts []string, relevant bool) error
}

// NewSession starts a session from a free-text query.
func (m *Mirror) NewSession(text string) (*Session, error) { return newSession(m, text) }

func newSession(h sessionHost, text string) (*Session, error) {
	if err := h.requireIndex(); err != nil {
		return nil, err
	}
	s := &Session{
		m: h, Text: text,
		textTerms: ir.Analyze(text),
		weights:   map[string]float64{},
		Alpha:     1, Beta: 0.75, Gamma: 0.25,
	}
	for _, a := range h.Thesaurus().Associate(s.textTerms, 5) {
		s.weights[a.Concept] = a.Belief
	}
	return s, nil
}

// ClusterWeights returns the current content query (sorted by weight).
func (s *Session) ClusterWeights() ([]string, []float64) {
	terms := make([]string, 0, len(s.weights))
	for t := range s.weights {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if s.weights[terms[i]] != s.weights[terms[j]] {
			return s.weights[terms[i]] > s.weights[terms[j]]
		}
		return terms[i] < terms[j]
	})
	ws := make([]float64, len(terms))
	for i, t := range terms {
		ws[i] = s.weights[t]
	}
	return terms, ws
}

// Run evaluates the current session query and returns the top k hits:
// text evidence plus weighted content evidence combined with #wsum, the
// text term weighted by the session's Rocchio Alpha gain (Alpha = 1, the
// default, reduces to the unweighted #sum exactly). Every borrowed Scores
// map is released on every path, including error returns
// (poolcheck-enforced).
func (s *Session) Run(k int) ([]Hit, error) {
	textHits, err := s.m.QueryAnnotations(s.Text, 0)
	if err != nil {
		return nil, err
	}
	ts := hitsToScores(textHits)
	terms, ws := s.ClusterWeights()
	var cs ir.Scores
	var wtot float64
	for _, w := range ws {
		wtot += w
	}
	if len(terms) > 0 {
		cs, err = s.m.WeightedContentScores(terms, ws)
		if err != nil {
			ir.ReleaseScores(cs) // nil on error; release is nil-safe
			ir.ReleaseScores(ts)
			return nil, err
		}
	}
	combined, err := ir.CombineWSum(
		[]ir.Scores{ts, cs},
		[]float64{s.Alpha, 1},
		[]float64{float64(len(s.textTerms)) * ir.DefaultBelief, wtot * ir.DefaultBelief},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		ir.ReleaseScores(combined)
		return nil, err
	}
	hits := scoresToHits(s.m, combined, k)
	ir.ReleaseScores(combined)
	return hits, nil
}

// Feedback applies one round of relevance judgments. Each relevant item's
// cluster words gain Beta weight, each non-relevant item's lose Gamma; the
// thesaurus is reinforced so the adaptation persists "across query
// sessions" — and, in persistent mode, across restarts: each
// reinforcement is logged to the WAL and replayed during recovery.
// On a WAL error the batch may be partially applied; everything applied
// is already in the thesaurus (and persists at the next checkpoint), so
// do not retry the same judgments.
func (s *Session) Feedback(relevant, nonrelevant []bat.OID) error {
	if len(relevant)+len(nonrelevant) == 0 {
		return fmt.Errorf("core: feedback needs at least one judgment")
	}
	apply := func(oids []bat.OID, gain float64, rel bool) error {
		for _, oid := range oids {
			words := s.m.ContentTerms(oid)
			for _, w := range words {
				s.weights[w] += gain
				if s.weights[w] <= 0 {
					delete(s.weights, w)
				}
			}
			// Under the write lock: reinforcement + WAL append stay
			// atomic with any concurrent Checkpoint.
			if err := s.m.reinforceLogged(s.textTerms, words, rel); err != nil {
				return err
			}
		}
		return nil
	}
	if err := apply(relevant, s.Beta, true); err != nil {
		return err
	}
	if err := apply(nonrelevant, -s.Gamma, false); err != nil {
		return err
	}
	s.Round++
	return nil
}

// PrecisionAtK is the evaluation helper used by E9: the fraction of the
// top-k hits for which relevant() is true.
func PrecisionAtK(hits []Hit, k int, relevant func(Hit) bool) float64 {
	if k > len(hits) {
		k = len(hits)
	}
	if k == 0 {
		return 0
	}
	n := 0
	for _, h := range hits[:k] {
		if relevant(h) {
			n++
		}
	}
	return float64(n) / float64(k)
}

// MeanReciprocalRank is the evaluation helper used by E8.
func MeanReciprocalRank(rankings [][]Hit, relevant func(Hit) bool) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var sum float64
	for _, hits := range rankings {
		for i, h := range hits {
			if relevant(h) {
				sum += 1 / float64(i+1)
				break
			}
		}
	}
	return sum / float64(len(rankings))
}
