//go:build !pooldebug

package core

import "mirror/internal/ir"

// Release builds: pool accounting hooks compile to nothing. Build with
// -tags pooldebug for live-borrow counting and released-slice poisoning.

func rankedBorrowed()            {}
func rankedReleased([]ir.Ranked) {}

// LiveRanked reports the number of borrowed-but-unreleased ranking
// slices. It always returns 0 unless built with -tags pooldebug.
func LiveRanked() int { return 0 }
