package core

import (
	"testing"
	"time"
)

// blockingRetriever wedges QueryAnnotationsStamped until released,
// standing in for any slow in-flight handler at shutdown time.
type blockingRetriever struct {
	Retriever
	entered chan struct{} // closed when the handler is inside the call
	release chan struct{} // handler returns when this closes
}

func (b *blockingRetriever) QueryAnnotationsStamped(text string, k int) ([]Hit, EpochStamp, error) {
	close(b.entered)
	<-b.release
	return []Hit{{OID: 7, URL: "http://x/drained.ppm", Score: 0.5}}, EpochStamp{Seq: 3, Docs: 1}, nil
}

// Serve's stop function must drain in-flight RPC handlers before
// returning: a reply computed from a consistent epoch is written to the
// client even when shutdown lands mid-call. Regression test — stop used
// to close the listener and return immediately, racing the final
// checkpoint (and process exit) against handlers still holding the store.
func TestServeStopDrainsInflightHandlers(t *testing.T) {
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b := &blockingRetriever{
		Retriever: m,
		entered:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	addr, stop, err := Serve(b, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialMirror(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type reply struct {
		r   *TextQueryReply
		err error
	}
	got := make(chan reply, 1)
	go func() {
		r, err := c.TextQueryStamped("anything", 3, false)
		got <- reply{r, err}
	}()

	select {
	case <-b.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered the retriever")
	}

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	// The handler is wedged: stop must wait for it, not return.
	select {
	case <-stopped:
		t.Fatal("stop returned while a handler was in flight")
	case <-time.After(200 * time.Millisecond):
	}

	close(b.release)
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop never returned after the handler finished")
	}
	select {
	case rep := <-got:
		if rep.err != nil {
			t.Fatalf("in-flight query failed across shutdown: %v", rep.err)
		}
		if len(rep.r.Hits) != 1 || rep.r.Hits[0].URL != "http://x/drained.ppm" || rep.r.Epoch != 3 {
			t.Fatalf("in-flight reply = %+v", rep.r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight reply never arrived")
	}
}
