package core

// Distributed serving (internal/dist): the networked counterpart of the
// in-process ShardedEngine. A shard PRIMARY is a standalone persistent
// Mirror declared a member of an engine-wide layout (NewShardMember /
// PersistOptions.Shard*) whose index lifecycle is driven remotely: the
// router fans ShardPublish calls out instead of an in-process engine
// holding pointers. Three properties make that workable over a network:
//
//   - Publishes are SELF-CONTAINED. An in-process shard defers WAL
//     publish replay to its engine, which re-registers global statistics
//     before beliefs recompute. A networked shard has no engine at
//     recovery time, so its publish records carry the statistics (and,
//     for full builds, the frozen codebook): replay — local WAL replay
//     and follower replication alike — recomputes the exact beliefs the
//     live publish produced (applyStatsPublishLocked).
//
//   - Epochs are pinned by TAG, not pointer. The router stamps every
//     publish round with a monotone tag; each shard retains a ring of
//     recently published epochs (KeepEpochHistory) and serves a query at
//     the epoch carrying the requested tag. All shards answering tag T
//     reproduce exactly the collection state of round T — the networked
//     equivalent of the engineEpoch's vector of epoch pointers — which
//     is what keeps the oracle invariant ("every served result exact for
//     some published epoch") intact over the network.
//
//   - Replication IS the WAL. A primary appends every logical WAL
//     payload to an in-memory stream (EnableShipping); followers pull
//     frames (WALShip RPC) and replay them through the same apply paths
//     recovery uses, logging each to their own WAL stamped with the
//     stream position. Catch-up after restart or a torn follower WAL
//     tail is a positional re-pull with idempotent re-apply; a nonce
//     mismatch (primary restarted) or positional gap degrades to a full
//     resync stream synthesised from the primary's state (ShardSync),
//     which also re-applies idempotently.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"mirror/internal/bat"
	"mirror/internal/ir"
	"mirror/internal/moa"
	"mirror/internal/thesaurus"
)

// ErrFollower is returned by every public mutation attempted on a
// replication follower; writes go to the shard primary, and the follower
// converges by replaying the shipped WAL.
var ErrFollower = errors.New("core: store is a replication follower (writes go to the shard primary)")

// shipState is a primary's in-memory replication stream: every logical
// WAL payload of this process incarnation, in log order. The nonce names
// the incarnation — a follower holding positions from a previous one is
// told to resync. Guarded by m.mu.
type shipState struct {
	nonce uint64
	log   [][]byte
}

// maxShipBatch bounds how many records one WALShip reply carries.
const maxShipBatch = 256

func newShipNonce() uint64 {
	n := uint64(time.Now().UnixNano())<<8 ^ uint64(os.Getpid())
	if n == 0 {
		n = 1
	}
	return n
}

// ---- setup ----

// NewShardMember creates an in-memory Mirror declared shard index of an
// engine-wide layout of count shards (the networked counterpart of a
// ShardedEngine member; persistent members set PersistOptions.ShardIndex/
// ShardCount instead). Its index lifecycle is driven by ApplyShardPublish.
func NewShardMember(index, count int) (*Mirror, error) {
	if count <= 0 || index < 0 || index >= count {
		return nil, fmt.Errorf("core: shard %d/%d out of range", index, count)
	}
	m, err := New()
	if err != nil {
		return nil, err
	}
	m.shardIndex, m.shardCount = index, count
	return m, nil
}

// SetFollower marks the store a replication follower: every public
// mutation returns ErrFollower; state changes arrive only through
// ApplyShipped/ApplyGenesis (and Checkpoint, which stays allowed).
func (m *Mirror) SetFollower() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.follower = true
}

// IsFollower reports whether SetFollower was called.
func (m *Mirror) IsFollower() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.follower
}

// EnableShipping makes the store a replication primary: from now on every
// logical WAL record also appends to the in-memory replication stream
// followers pull from. Idempotent.
func (m *Mirror) EnableShipping() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ship == nil {
		m.ship = &shipState{nonce: newShipNonce()}
	}
}

// KeepEpochHistory retains the n most recently published epochs so
// tag-pinned queries keep answering while newer publishes land. n <= 0
// disables retention (standalone default).
func (m *Mirror) KeepEpochHistory(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochHistN = n
	if n <= 0 {
		m.epochHist = nil
	}
}

// ShardIdentity reports the store's position in its sharded layout
// (count 0 for standalone stores).
func (m *Mirror) ShardIdentity() (index, count int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.shardIndex, m.shardCount
}

// Topology describes the store's place in the serving topology (moash
// \topology).
func (m *Mirror) Topology() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.shardCount == 0 {
		return "single store (standalone)"
	}
	role := "primary"
	if m.follower {
		role = "follower"
	}
	return fmt.Sprintf("shard %d/%d %s", m.shardIndex, m.shardCount, role)
}

// ---- self-contained (stats-bearing) shard publishes ----

// ApplyShardPublish applies one router-driven publish to a shard member:
// the delta documents (shard-local order; full = the whole local corpus
// from base 0) with their content words, the engine-wide collection
// statistics of this round, and the round's tag. It is the networked
// analogue of the engine's SetGlobalStats + publishShardDelta pair, but
// logs a SELF-CONTAINED WAL record so recovery and replication need no
// engine. The resulting epoch serves under the given tag.
func (m *Mirror) ApplyShardPublish(urls []string, words map[string][]string, annStats, imgStats *ir.GlobalStats, cb *Codebook, full bool, tag uint64) (RefreshStats, error) {
	var st RefreshStats
	if annStats == nil || imgStats == nil {
		return st, fmt.Errorf("core: shard publish without global statistics")
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.follower {
		return st, ErrFollower
	}
	if m.shardCount == 0 {
		return st, fmt.Errorf("core: shard publish on a standalone store")
	}
	rec := walRecord{Op: "publish", AnnStats: annStats, ImgStats: imgStats, Codebook: cb, Full: full, Tag: tag}
	if !full {
		rec.Base = m.coveredLocked()
	}
	for i, url := range urls {
		pos := rec.Base + i
		if pos >= len(m.order) || m.order[pos] != url {
			return st, fmt.Errorf("core: publish document %d is %q, library order has %q",
				pos, url, orderAt(m.order, pos))
		}
		rec.Docs = append(rec.Docs, walDoc{URL: url, Words: dedupSorted(append([]string(nil), words[url]...))})
	}
	applied, err := m.applyStatsPublishLocked(rec)
	if err != nil {
		return st, err
	}
	var walErr error
	if applied {
		walErr = m.logWAL(rec)
		st.Merges = m.compactLocked()
	}
	if err := m.publishEpochLocked(); err != nil {
		return st, err
	}
	ep := m.currentEpoch()
	st.NewDocs, st.Docs, st.Epoch, st.Segments = len(urls), ep.Docs, ep.Seq, m.maxSegments()
	if walErr != nil {
		return st, fmt.Errorf("core: delta published but not WAL-logged (will persist at next checkpoint): %w", walErr)
	}
	return st, nil
}

func orderAt(order []string, pos int) string {
	if pos < len(order) {
		return order[pos]
	}
	return "<beyond library>"
}

// applyStatsPublishLocked applies one self-contained publish record —
// live (ApplyShardPublish), local WAL replay, and follower replication
// all funnel through it, so every path reconstructs the identical index
// state. Idempotent: publishes the store already covers are skipped,
// EXCEPT empty-delta records at the current coverage, which re-apply
// (they exist to move beliefs under new statistics, and refinalization is
// idempotent). Callers hold m.mu (write); the epoch publish and the
// sequence bump are the caller's. Returns whether state changed.
func (m *Mirror) applyStatsPublishLocked(r walRecord) (bool, error) {
	covered := m.coveredLocked()
	target := r.Base + len(r.Docs)
	switch {
	case covered > target:
		return false, nil // a later publish is already applied
	case covered == target && len(r.Docs) > 0 && m.indexed:
		// Already applied — skip, EXCEPT a full publish under a NEW tag: a
		// router re-clustering rebuild covers the same corpus but carries a
		// new model, so it must re-apply (same-tag full records are
		// idempotent replication replays, which the skip is for).
		if !r.Full || r.Tag == m.lastPublishTag {
			return false, nil
		}
	case covered < r.Base:
		return false, fmt.Errorf("core: publish base %d beyond %d covered documents (replication gap)", r.Base, covered)
	}
	annVocab := sortedKeys(r.AnnStats.DF)
	imgVocab := sortedKeys(r.ImgStats.DF)
	ir.SetGlobalStats(m.DB, InternalSet+"_annotation", r.AnnStats)
	ir.SetGlobalStats(m.DB, InternalSet+"_image", r.ImgStats)
	defer func() {
		ir.SetGlobalStats(m.DB, InternalSet+"_annotation", nil)
		ir.SetGlobalStats(m.DB, InternalSet+"_image", nil)
	}()
	if r.Full || (r.Base == 0 && !m.indexed) {
		// Full (re)build: repopulate the internal set from the record's
		// covered prefix. Re-applied on a diverged follower this CONVERGES
		// rather than accumulates: populate resets the set first.
		thDocs, err := m.populateCoveredLocked(r.Docs, annVocab, imgVocab)
		if err != nil {
			return false, err
		}
		m.Thes = thesaurus.Build(thDocs)
	} else {
		if !m.indexed {
			return false, fmt.Errorf("core: incremental publish at base %d on an unindexed store", r.Base)
		}
		delta := r.Docs[covered-r.Base:]
		urls := make([]string, 0, len(delta))
		words := make(map[string][]string, len(delta))
		for _, d := range delta {
			urls = append(urls, d.URL)
			words[d.URL] = d.Words
		}
		if _, err := m.applyDeltaLocked(urls, words, annVocab, imgVocab, true); err != nil {
			return false, err
		}
	}
	m.indexed = true
	if r.Codebook != nil {
		m.codebook = r.Codebook
	}
	m.lastAnnStats, m.lastImgStats = r.AnnStats, r.ImgStats
	m.lastPublishTag = r.Tag
	return true, nil
}

// populateCoveredLocked is populateContentLocked restricted to the given
// covered prefix of the library (a replicated publish may cover fewer
// documents than the library holds — the rest are pending their own
// publish). docs[i] must be the library's i-th document. Callers hold
// m.mu (write).
func (m *Mirror) populateCoveredLocked(docs []walDoc, annDict, imgDict []string) ([]thesaurus.Doc, error) {
	if err := m.DB.Reset(InternalSet); err != nil {
		return nil, err
	}
	m.contentTerms = map[bat.OID][]string{}
	annB, _ := m.DB.BAT(LibrarySet + "_annotation")
	var thDocs []thesaurus.Doc
	for i, d := range docs {
		if i >= len(m.order) || m.order[i] != d.URL {
			return nil, fmt.Errorf("core: publish document %d is %q, library order has %q",
				i, d.URL, orderAt(m.order, i))
		}
		var ann string
		if annB != nil {
			if v, ok := annB.Find(bat.OID(i)); ok {
				ann, _ = v.(string)
			}
		}
		terms := dedupSorted(append([]string(nil), d.Words...))
		oid, err := m.DB.Insert(InternalSet, map[string]any{
			"source": d.URL, "annotation": ann, "image": terms,
		})
		if err != nil {
			return nil, err
		}
		m.contentTerms[oid] = terms
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: ir.Analyze(ann), Concepts: terms})
		}
	}
	if annDict != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_annotation", annDict); err != nil {
			return nil, err
		}
	}
	if imgDict != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_image", imgDict); err != nil {
			return nil, err
		}
	}
	if err := m.DB.Finalize(InternalSet); err != nil {
		return nil, err
	}
	return thDocs, nil
}

// ---- tag-pinned shard queries ----

// shardTopK evaluates one scatter leg at the epoch carrying args.Tag,
// reproducing exactly what the in-process engineEpoch does per shard:
// evaluate with the pruning threshold seeded at the router's floor, remap
// local OIDs to global, cut unranked results to the global top k. The
// reply's theta feeds the router's shared rising threshold.
func (m *Mirror) shardTopK(args *ShardQueryArgs) (*ShardQueryReply, error) {
	ep, err := m.epochForTag(args.Tag)
	if err != nil {
		return nil, err
	}
	rep := &ShardQueryReply{Epoch: ep.Seq, Docs: ep.Docs}
	var theta *bat.TopKThreshold
	if args.K > 0 {
		theta = bat.NewTopKThreshold()
		theta.Raise(args.ThetaFloor)
		if args.ScanID != 0 {
			// Accept router RaiseTheta pushes while this leg scans.
			defer registerScanTheta(args.ScanID, theta)()
		}
	}

	switch args.Kind {
	case "wsum":
		sc, err := ep.weightedContentScores(args.Terms, args.Weights)
		if err != nil {
			ir.ReleaseScores(sc) // nil on error; release is nil-safe
			return nil, err
		}
		for oid, s := range sc {
			g, gerr := globalOIDOf(ep, bat.OID(oid))
			if gerr != nil {
				ir.ReleaseScores(sc)
				return nil, gerr
			}
			rep.OIDs = append(rep.OIDs, g)
			rep.Scores = append(rep.Scores, s)
		}
		ir.ReleaseScores(sc)
		return rep, nil

	case "moa":
		var params map[string]moa.Param
		if args.Terms != nil {
			params = ir.QueryParams(args.Terms)
		}
		res, err := ep.queryTopK(args.Text, params, args.K, theta)
		if err != nil {
			return nil, err
		}
		if res.Rows == nil {
			return nil, fmt.Errorf("scalar Moa queries cannot be merged across shards (run against one shard)")
		}
		rows := res.Rows
		for i := range rows {
			g, gerr := globalOIDOf(ep, rows[i].OID)
			if gerr != nil {
				return nil, gerr
			}
			rows[i].OID = bat.OID(g)
		}
		// The router's bounded merge only needs this shard's global top k;
		// cutting here (on GLOBAL OIDs, after the remap — tie order must
		// match the router's) is exact and bounds the reply size.
		if args.K > 0 && !res.Ranked && len(rows) > args.K {
			sel := bat.NewBoundedTopK(args.K, moa.RowWorse)
			for _, row := range rows {
				sel.Offer(row)
			}
			rows = sel.Ranked()
		}
		rep.Ranked = res.Ranked || args.K > 0
		rep.Numeric = true
		for _, row := range rows {
			rep.OIDs = append(rep.OIDs, uint64(row.OID))
			f, isF := row.Value.(float64)
			if !isF {
				rep.Numeric = false
			}
			rep.Floats = append(rep.Floats, isF)
			rep.Scores = append(rep.Scores, f)
			rep.Values = append(rep.Values, fmt.Sprintf("%v", row.Value))
		}
		if theta != nil {
			rep.Theta = theta.Load()
		}
		return rep, nil

	case "ann", "content":
		var src string
		var params map[string]moa.Param
		if args.Kind == "ann" {
			src = annotationQuery
			params = ir.QueryParams(ir.Analyze(args.Text))
		} else {
			src = contentQuery
			params = ir.QueryParams(args.Terms)
		}
		res, err := ep.queryTopK(src, params, args.K, theta)
		if err != nil {
			return nil, err
		}
		hits := make([]Hit, 0, len(res.Rows))
		for _, row := range res.Rows {
			g, gerr := globalOIDOf(ep, row.OID)
			if gerr != nil {
				return nil, gerr
			}
			score, _ := row.Value.(float64)
			hits = append(hits, Hit{OID: bat.OID(g), URL: ep.urlOf(row.OID), Score: score})
		}
		if !res.Ranked && args.K > 0 && len(hits) > args.K {
			hits = topKHits(hits, args.K)
		}
		for _, h := range hits {
			rep.OIDs = append(rep.OIDs, uint64(h.OID))
			rep.URLs = append(rep.URLs, h.URL)
			rep.Scores = append(rep.Scores, h.Score)
		}
		rep.Ranked = res.Ranked || args.K > 0
		if theta != nil {
			rep.Theta = theta.Load()
		}
		return rep, nil
	}
	return nil, fmt.Errorf("core: unknown shard query kind %q", args.Kind)
}

// globalOIDOf maps a shard-local document OID to its engine-global OID
// within the pinned epoch.
func globalOIDOf(ep *IndexEpoch, local bat.OID) (uint64, error) {
	if uint64(local) >= uint64(len(ep.globals)) {
		return 0, fmt.Errorf("local OID %d beyond %d mapped documents", local, len(ep.globals))
	}
	return ep.globals[local], nil
}

// ---- replication: primary side ----

// shipSince returns the stream suffix [since, …) of the primary's
// replication log, bounded to maxShipBatch records. resync reports that
// the position is unservable — the follower's nonce names a previous
// incarnation, or the position lies beyond the stream — and the follower
// must take a full resync (shipGenesis).
func (m *Mirror) shipSince(nonce, since uint64) (recs [][]byte, curNonce, next uint64, resync bool, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.ship == nil {
		return nil, 0, 0, false, fmt.Errorf("core: store does not ship its WAL (not a shard primary)")
	}
	curNonce = m.ship.nonce
	if nonce != curNonce || since > uint64(len(m.ship.log)) {
		return nil, curNonce, 0, true, nil
	}
	end := uint64(len(m.ship.log))
	if end-since > maxShipBatch {
		end = since + maxShipBatch
	}
	recs = append(recs, m.ship.log[since:end]...)
	return recs, curNonce, end, false, nil
}

// shipGenesis synthesises a full resync stream from the primary's current
// state: one insert record per library document, then one full publish
// record carrying the covered prefix, the cached collection statistics
// and the codebook. Applying it on ANY follower state converges (inserts
// dedup, the full publish resets and repopulates). The returned position
// is where incremental pulls resume.
func (m *Mirror) shipGenesis() (recs [][]byte, nonce, pos uint64, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.ship == nil {
		return nil, 0, 0, fmt.Errorf("core: store does not ship its WAL (not a shard primary)")
	}
	add := func(r walRecord) error {
		p, merr := json.Marshal(&r)
		if merr != nil {
			return merr
		}
		recs = append(recs, p)
		return nil
	}
	annB, _ := m.DB.BAT(LibrarySet + "_annotation")
	for i, url := range m.order {
		r := walRecord{Op: "insert", URL: url}
		if annB != nil {
			if v, ok := annB.Find(bat.OID(i)); ok {
				r.Annotation, _ = v.(string)
			}
		}
		if i < len(m.globalOIDs) {
			g := m.globalOIDs[i]
			r.Global = &g
		}
		if err := add(r); err != nil {
			return nil, 0, 0, err
		}
	}
	covered := m.coveredLocked()
	if m.indexed && m.lastAnnStats != nil && m.lastImgStats != nil {
		docs := make([]walDoc, 0, covered)
		for i := 0; i < covered; i++ {
			docs = append(docs, walDoc{URL: m.order[i], Words: m.contentTerms[bat.OID(i)]})
		}
		if err := add(walRecord{
			Op: "publish", Base: 0, Full: true, Docs: docs,
			AnnStats: m.lastAnnStats, ImgStats: m.lastImgStats,
			Codebook: m.codebook, Tag: m.lastPublishTag,
		}); err != nil {
			return nil, 0, 0, err
		}
	}
	return recs, m.ship.nonce, uint64(len(m.ship.log)), nil
}

// ---- replication: follower side ----

// ReplState reports the follower's replication position: the primary
// incarnation nonce and the last stream position durably applied.
func (m *Mirror) ReplState() (nonce, pos uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.replNonce, m.replPos
}

// ApplyShipped replays stream records [from+1 … from+len] pulled from the
// primary under nonce, through the same apply paths local recovery uses.
// Each record is logged to the follower's own WAL stamped with its stream
// position, so a restart resumes pulling where durability ends. Errors
// mean the stream does not apply (divergence); the caller resyncs.
func (m *Mirror) ApplyShipped(payloads [][]byte, from, nonce uint64) error {
	for i, p := range payloads {
		var r walRecord
		if err := json.Unmarshal(p, &r); err != nil {
			return fmt.Errorf("core: shipped record: %w", err)
		}
		r.Ship, r.ShipNonce = from+uint64(i)+1, nonce
		if err := m.applyShippedRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGenesis replays a full resync stream and installs the stream
// position incremental pulls resume from. Only the last record carries
// the durable position stamp: a crash mid-genesis leaves the previous
// nonce, which forces a fresh (idempotent) resync rather than resuming an
// incomplete one.
func (m *Mirror) ApplyGenesis(payloads [][]byte, nonce, pos uint64) error {
	for i, p := range payloads {
		var r walRecord
		if err := json.Unmarshal(p, &r); err != nil {
			return fmt.Errorf("core: resync record: %w", err)
		}
		if i == len(payloads)-1 {
			r.Ship, r.ShipNonce = pos, nonce
		}
		if err := m.applyShippedRecord(r); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.replPos, m.replNonce = pos, nonce
	m.mu.Unlock()
	return nil
}

// applyShippedRecord applies one stream record. WAL-append failures are
// reduced durability, not divergence: the in-memory apply succeeded, and
// an un-advanced durable position just makes a restarted follower re-pull
// an idempotent suffix.
func (m *Mirror) applyShippedRecord(r walRecord) error {
	switch r.Op {
	case "insert":
		if _, err := m.replayInsert(r.URL, r.Annotation, r.Global); err != nil {
			return err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		_ = m.logWAL(r)
		m.trackShipLocked(r)
		return nil
	case "feedback":
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.Thes != nil {
			m.Thes.Reinforce(r.Words, r.Concepts, r.Relevant)
		}
		_ = m.logWAL(r)
		m.trackShipLocked(r)
		return nil
	case "publish":
		if r.AnnStats == nil || r.ImgStats == nil {
			return fmt.Errorf("core: shipped publish without global statistics")
		}
		m.buildMu.Lock()
		defer m.buildMu.Unlock()
		m.mu.Lock()
		defer m.mu.Unlock()
		applied, err := m.applyStatsPublishLocked(r)
		if err != nil {
			return err
		}
		_ = m.logWAL(r)
		m.trackShipLocked(r)
		if applied {
			return m.publishEpochLocked()
		}
		return nil
	case "merge":
		if _, err := m.replayMerge(r); err != nil {
			return err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		_ = m.logWAL(r)
		m.trackShipLocked(r)
		return nil
	}
	return fmt.Errorf("core: unknown shipped WAL op %q", r.Op)
}

// trackShipLocked advances the follower's replication position to the
// record's stamp. Callers hold m.mu (write).
func (m *Mirror) trackShipLocked(r walRecord) {
	if r.Ship > m.replPos {
		m.replPos = r.Ship
		if r.ShipNonce != 0 {
			m.replNonce = r.ShipNonce
		}
	}
}
