package core

import (
	"bytes"
	"strings"
	"testing"

	"mirror/internal/corpus"
)

// The load-harness RPC surface: stamped replies, live ingest, stats and
// server-side feedback sessions, end to end over a real connection.
func TestServeLoadHarnessSurface(t *testing.T) {
	m, items := buildDemo(t, 12)
	addr, stop, err := m.Serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	c, err := DialMirror(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	class := mostAnnotatedClass(items)
	term := corpus.CanonicalTerm(class)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 12 || !st.Indexed || !st.Current || st.Epoch == 0 || st.EpochDocs != 12 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}

	reply, err := c.TextQueryStamped(term, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Hits) == 0 || reply.Epoch != st.Epoch || reply.EpochDocs != 12 {
		t.Fatalf("stamped reply = %+v", reply)
	}
	moa, err := c.MoaQueryTopK(annotationQuery, []string{term}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if moa.Epoch != st.Epoch || moa.EpochDocs != 12 {
		t.Fatalf("moa stamp = %d/%d, want %d/12", moa.Epoch, moa.EpochDocs, st.Epoch)
	}

	// Live ingest over the wire: new doc is pending until a Refresh
	// publishes a new epoch, then queries carry the new stamp.
	extra := corpus.Generate(corpus.Config{N: 14, W: 48, H: 48, Seed: 11, AnnotateRate: 0.75})[12:]
	for _, it := range extra {
		var ppm bytes.Buffer
		if err := it.Scene.Img.EncodePPM(&ppm); err != nil {
			t.Fatal(err)
		}
		ar, err := c.AddImage(it.URL, it.Annotation, ppm.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if ar.Size == 0 || ar.Pending == 0 {
			t.Fatalf("add reply = %+v", ar)
		}
	}
	if st, err = c.Stats(); err != nil || st.Pending != 2 || st.Current {
		t.Fatalf("stats after ingest = %+v, %v", st, err)
	}
	// Duplicate ingest must fail loudly (harness retry logic keys on it).
	var ppm bytes.Buffer
	if err := extra[0].Scene.Img.EncodePPM(&ppm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddImage(extra[0].URL, "dup", ppm.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "already in library") {
		t.Fatalf("duplicate AddImage error = %v", err)
	}
	if _, err := c.AddImage("http://x/bad.ppm", "junk", []byte("not a ppm")); err == nil {
		t.Fatal("garbage PPM must be rejected")
	}

	rr, err := c.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rr.NewDocs != 2 || rr.Docs != 14 {
		t.Fatalf("refresh reply = %+v", rr)
	}
	reply2, err := c.TextQueryStamped(term, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if reply2.Epoch <= reply.Epoch || reply2.EpochDocs != 14 {
		t.Fatalf("post-refresh stamp = %d/%d (was %d/12)", reply2.Epoch, reply2.EpochDocs, reply.Epoch)
	}

	// Server-side feedback sessions.
	id, err := c.SessionStart(term)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.SessionRun(id, 5)
	if err != nil || len(run.Hits) == 0 || run.Round != 0 {
		t.Fatalf("session run = %+v, %v", run, err)
	}
	fb, err := c.SessionFeedback(id, []uint64{run.Hits[0].OID}, nil)
	if err != nil || fb.Round != 1 {
		t.Fatalf("feedback = %+v, %v", fb, err)
	}
	run2, err := c.SessionRun(id, 5)
	if err != nil || run2.Round != 1 {
		t.Fatalf("post-feedback run = %+v, %v", run2, err)
	}
	if err := c.SessionEnd(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionRun(id, 5); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("ended session error = %v", err)
	}
	if err := c.SessionEnd(id); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := c.SessionFeedback(id, []uint64{1}, nil); err == nil {
		t.Fatal("feedback on ended session must fail")
	}
}
