package core

import (
	"strings"
	"testing"
)

// oracleWire converts local hits to the wire shape VerifyHits consumes.
func oracleWire(hits []Hit) []WireHit {
	out := make([]WireHit, len(hits))
	for i, h := range hits {
		out[i] = WireHit{OID: uint64(h.OID), URL: h.URL, Score: h.Score}
	}
	return out
}

// oracleFor seeds an oracle with the corpus prefix order.
func oracleFor(urls, anns []string) *Oracle {
	o := NewOracle()
	for i := range urls {
		o.AddDoc(urls[i], anns[i])
	}
	return o
}

// The oracle's trivial stand-in pipeline must not matter: a store built
// with the stub IMAGE pipeline answers annotation queries bit-identically
// to the oracle's reference build, full ranking and cut.
func TestOracleMatchesStubPipelineStore(t *testing.T) {
	urls, anns := refreshCorpus(60, 1)
	m := oneShotStub(t, urls, anns)
	o := oracleFor(urls, anns)
	for _, q := range []string{"harbor", "harbor gull", "tide pier salt", "nosuchword"} {
		for _, k := range []int{0, 5, 10} {
			hits, st, err := m.QueryAnnotationsStamped(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if st.Docs != len(urls) || st.Seq == 0 {
				t.Fatalf("stamp = %+v, want Docs=%d and a nonzero Seq", st, len(urls))
			}
			if err := o.VerifyHits(st.Docs, q, k, oracleWire(hits)); err != nil {
				t.Fatalf("q=%q k=%d: %v", q, k, err)
			}
		}
	}
}

// Incremental epochs: every publish's stamped prefix must verify against
// the oracle, and the stamp must advance with each refresh.
func TestOracleVerifiesIncrementalEpochs(t *testing.T) {
	urls, anns := refreshCorpus(80, 2)
	m := oneShotStub(t, urls[:30], anns[:30])
	o := oracleFor(urls, anns)
	lastSeq := int64(0)
	for next := 30; next < len(urls); next += 17 {
		hi := next + 17
		if hi > len(urls) {
			hi = len(urls)
		}
		for i := next; i < hi; i++ {
			if err := m.AddImage(urls[i], anns[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		refreshStub(t, m)
		hits, st, err := m.QueryAnnotationsStamped("harbor gull", 8)
		if err != nil {
			t.Fatal(err)
		}
		if st.Docs != hi {
			t.Fatalf("stamped Docs = %d after refreshing to %d", st.Docs, hi)
		}
		if st.Seq <= lastSeq {
			t.Fatalf("epoch seq %d did not advance past %d", st.Seq, lastSeq)
		}
		lastSeq = st.Seq
		if err := o.VerifyHits(st.Docs, "harbor gull", 8, oracleWire(hits)); err != nil {
			t.Fatal(err)
		}
	}
}

// Sharded scatter-gather answers (global OIDs, shard-local scoring) must
// verify against the same single-store oracle.
func TestOracleVerifiesShardedEngine(t *testing.T) {
	urls, anns := refreshCorpus(60, 3)
	e, err := NewSharded(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range urls {
		if err := e.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.buildIndex(DefaultIndexOptions(), stubPipeline{}); err != nil {
		t.Fatal(err)
	}
	o := oracleFor(urls, anns)
	for _, q := range []string{"harbor", "tide pier anchor"} {
		hits, st, err := e.QueryAnnotationsStamped(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if st.Docs != len(urls) {
			t.Fatalf("stamped Docs = %d, want %d", st.Docs, len(urls))
		}
		if err := o.VerifyHits(st.Docs, q, 10, oracleWire(hits)); err != nil {
			t.Fatalf("q=%q: %v", q, err)
		}
	}
}

// The verifier must actually catch lies: wrong scores, wrong documents,
// wrong lengths and unknown prefixes all fail.
func TestOracleRejectsCorruptedAnswers(t *testing.T) {
	urls, anns := refreshCorpus(40, 4)
	m := oneShotStub(t, urls, anns)
	o := oracleFor(urls, anns)
	hits, st, err := m.QueryAnnotationsStamped("harbor gull", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("test query matched nothing; corpus seed needs adjusting")
	}
	ok := oracleWire(hits)
	if err := o.VerifyHits(st.Docs, "harbor gull", 6, ok); err != nil {
		t.Fatal(err)
	}

	bad := append([]WireHit(nil), ok...)
	bad[0].Score *= 1.0000001
	if err := o.VerifyHits(st.Docs, "harbor gull", 6, bad); err == nil {
		t.Fatal("perturbed score passed verification")
	} else if !strings.Contains(err.Error(), "score") {
		t.Fatalf("unexpected error: %v", err)
	}

	bad = append([]WireHit(nil), ok...)
	bad[len(bad)-1].URL = "img://not-in-collection"
	if err := o.VerifyHits(st.Docs, "harbor gull", 6, bad); err == nil {
		t.Fatal("foreign URL passed verification")
	}

	if err := o.VerifyHits(st.Docs, "harbor gull", 6, ok[:len(ok)-1]); err == nil {
		t.Fatal("truncated ranking passed verification")
	}

	if err := o.VerifyHits(len(urls)+1, "harbor gull", 6, ok); err == nil {
		t.Fatal("prefix beyond the oracle's ingest order passed verification")
	}
}

// A stale-but-published prefix is legal (that is the soak invariant): a
// query answered by the epoch BEFORE the latest refresh still verifies,
// under the stamp it was actually served from.
func TestOracleAcceptsStalePublishedPrefix(t *testing.T) {
	urls, anns := refreshCorpus(50, 5)
	m := oneShotStub(t, urls[:35], anns[:35])
	o := oracleFor(urls, anns)
	hits, st, err := m.QueryAnnotationsStamped("harbor gull", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 35; i < len(urls); i++ {
		if err := m.AddImage(urls[i], anns[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	refreshStub(t, m)
	// The old answer with its old stamp still verifies; the same answer
	// claimed against the new prefix generally must not.
	if err := o.VerifyHits(st.Docs, "harbor gull", 7, oracleWire(hits)); err != nil {
		t.Fatalf("stale published prefix rejected: %v", err)
	}
	cur, stNew, err := m.QueryAnnotationsStamped("harbor gull", 7)
	if err != nil {
		t.Fatal(err)
	}
	if stNew.Docs != len(urls) {
		t.Fatalf("stamped Docs = %d, want %d", stNew.Docs, len(urls))
	}
	if err := o.VerifyHits(stNew.Docs, "harbor gull", 7, oracleWire(cur)); err != nil {
		t.Fatal(err)
	}
}
