package core

import (
	"sync"

	"mirror/internal/ir"
)

// Pooled ranking scratch: borrow/return discipline for []ir.Ranked slices.
//
// The combined-evidence query paths rank on every request; the heap/sort
// scratch is recycled through rankedPool behind borrowRanked/releaseRanked.
// Call sites thread the slice through ir.RankInto in the
// `ranked = ir.RankInto(ranked, ...)` style (RankInto may grow the backing
// array) and release exactly once on every path. internal/lint/poolcheck
// enforces the discipline statically; the pooldebug build tag counts live
// borrows and poisons released slices.
//
// Raw rankedPool access outside this file is a poolcheck diagnostic.
//
//poolcheck:poolfile

// maxPooledRanked bounds the capacity of slices the pool retains: the
// k<=0 dual-coding/session paths rank the whole collection, and pooling
// that scratch would pin O(collection) memory per P forever.
const maxPooledRanked = 1 << 14

// rankedPool recycles the []ir.Ranked scratch between queries.
var rankedPool = sync.Pool{New: func() any { return make([]ir.Ranked, 0, 128) }}

// borrowRanked returns an empty ranking scratch slice; pass it to
// ir.RankInto and hand the result back with releaseRanked exactly once.
func borrowRanked() []ir.Ranked {
	r := rankedPool.Get().([]ir.Ranked)
	rankedBorrowed()
	return r
}

// releaseRanked returns ranking scratch to the pool. Oversized backing
// arrays (full-collection rankings) are dropped instead of pooled.
func releaseRanked(r []ir.Ranked) {
	rankedReleased(r)
	if cap(r) > maxPooledRanked {
		return
	}
	rankedPool.Put(r[:0]) //nolint:staticcheck // slice reuse is the point
}
