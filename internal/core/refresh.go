package core

import (
	"fmt"

	"mirror/internal/ir"
	"mirror/internal/media"
	"mirror/internal/thesaurus"
)

// Incremental online indexing: Refresh picks up every document ingested
// since the last publish, runs extraction against the FROZEN feature
// codebooks (new documents are assigned to existing clusters — discovering
// new clusters remains the explicit offline BuildContentIndex), derives a
// delta index segment, recomputes the statistics-dependent beliefs, and
// publishes a fresh epoch. Queries keep serving the previous epoch
// throughout; the swap is one atomic pointer store.
//
// Compaction rides along: after each publish, the bounded-fan-in tiered
// policy (ir.PickMerge) concatenates small delta segments so the segment
// count stays logarithmic in the number of refreshes. mirrord's
// -refresh-every loop is the background thread that drives both.

// mergeFanIn bounds how many segments one compaction merges.
const mergeFanIn = 8

// RefreshStats reports what a Refresh (or engine Refresh) published.
type RefreshStats struct {
	NewDocs  int   // documents newly covered by this publish
	Docs     int   // documents covered after (engine-wide on a ShardedEngine)
	Epoch    int64 // published epoch number (max across shards when sharded)
	Merges   int   // segment merges applied by the compaction policy
	Segments int   // max segment count over all CONTREPs after compaction
}

// Refresh indexes every pending document incrementally and publishes a
// new epoch. It is cheap relative to BuildContentIndex — extraction runs
// only over the delta, clustering is frozen-codebook assignment, and old
// segments keep their structure (only their belief annotations are
// rewritten, because every publish moves the collection statistics and
// exactness demands all beliefs reflect them). Returns ErrNotIndexed
// before the first full build; refuses stores built by a distributed
// pipeline whose daemons kept their models (no codebook).
func (m *Mirror) Refresh() (RefreshStats, error) {
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	pipe := newLocalPipeline(func(url string) (*media.Image, bool) { return m.Raster(url) })
	return m.refreshWith(pipe)
}

// refreshWith is Refresh against an arbitrary pipeline (tests inject
// deterministic extractors). Caller holds buildMu.
func (m *Mirror) refreshWith(pipe segmentExtractor) (RefreshStats, error) {
	defer pipe.close()
	var st RefreshStats
	m.mu.RLock()
	if m.shardCount > 0 {
		m.mu.RUnlock()
		return st, fmt.Errorf("core: Refresh on a shard member; refresh the sharded engine instead")
	}
	if !m.indexed {
		m.mu.RUnlock()
		return st, fmt.Errorf("core: Refresh: %w", ErrNotIndexed)
	}
	covered := m.coveredLocked()
	pending := append([]string(nil), m.order[covered:]...)
	cb := m.codebook
	m.mu.RUnlock()

	if len(pending) == 0 {
		// Nothing to index; report the serving state.
		if ep := m.currentEpoch(); ep != nil {
			st.Docs, st.Epoch, st.Segments = ep.Docs, ep.Seq, m.maxSegments()
		}
		return st, nil
	}
	if cb == nil {
		return st, fmt.Errorf("core: Refresh needs the frozen feature codebook, which this store lacks " +
			"(built by a distributed pipeline or an older version); run BuildContentIndex once locally")
	}
	// The expensive part — segmentation, feature extraction, cluster
	// assignment — runs WITHOUT any store lock: inserts and queries
	// proceed concurrently. Documents ingested after the snapshot above
	// simply wait for the next refresh.
	words, err := assignExtraction(pipe, cb, pending)
	if err != nil {
		return st, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	return m.publishDeltaLocked(pending, words, nil, nil)
}

// coveredLocked reports how many documents the internal set covers;
// callers hold m.mu (either mode).
func (m *Mirror) coveredLocked() int {
	if def, ok := m.DB.Set(InternalSet); ok {
		return def.Card
	}
	return 0
}

// covered is coveredLocked with its own lock.
func (m *Mirror) covered() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.coveredLocked()
}

// ensureCodecLocked converts every CONTREP's segments to the database's
// registered postings codec — the in-memory half of a -store-codec
// switch on an existing store (the next checkpoint persists it). The
// conversion is lossless both ways, so a no-op when layouts already
// match. Callers hold m.mu (write).
func (m *Mirror) ensureCodecLocked() error {
	for _, prefix := range contrepPrefixes {
		if err := ir.EnsureCodec(m.DB, prefix); err != nil {
			return fmt.Errorf("core: postings codec conversion (%s): %w", prefix, err)
		}
	}
	return nil
}

// finishDeferredDelta completes a shard's structurally replayed publish
// records: the engine has re-registered the global statistics overrides
// and unioned the vocabulary, so segment derivation and belief
// recomputation can run, followed by the shard's epoch publish. Also the
// no-op-delta path for shards that replayed nothing (their beliefs still
// move when siblings' deltas changed df/N/avgdl).
func (m *Mirror) finishDeferredDelta() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.ensureCodecLocked(); err != nil {
		return err
	}
	for _, prefix := range contrepPrefixes {
		if ir.SegmentCount(m.DB, prefix) == 0 {
			if err := ir.EnsureSegmented(m.DB, prefix); err != nil {
				return err
			}
			continue
		}
		if _, err := ir.AppendSegment(m.DB, prefix); err != nil {
			return err
		}
		if err := ir.RefinalizeSegments(m.DB, prefix); err != nil {
			return err
		}
	}
	m.deferredDelta = false
	return m.publishEpochLocked()
}

// maxSegments reports the larger CONTREP segment count (introspection).
func (m *Mirror) maxSegments() int {
	n := 0
	for _, prefix := range contrepPrefixes {
		if c := ir.SegmentCount(m.DB, prefix); c > n {
			n = c
		}
	}
	return n
}

// publishDeltaLocked appends urls (with their pre-computed content words)
// to the internal set as a new index segment, refinalizes beliefs under
// the moved statistics, logs the publish to the WAL, compacts, and swaps
// in the new epoch. annVocab/imgVocab, when non-nil, are unioned into the
// dictionaries before finalization (the sharded engine passes the global
// vocabulary; statistics overrides are registered by the engine
// beforehand). Callers hold m.mu (write) and buildMu.
func (m *Mirror) publishDeltaLocked(urls []string, words map[string][]string, annVocab, imgVocab []string) (RefreshStats, error) {
	var st RefreshStats
	base := m.coveredLocked()
	walDocs, err := m.applyDeltaLocked(urls, words, annVocab, imgVocab, true)
	if err != nil {
		return st, err
	}

	// Durability: the publish record carries each delta document's content
	// words (extraction is not re-runnable at recovery — rasters are never
	// persisted), so WAL replay reconstructs this exact publish. A WAL
	// error does not undo the publish; it reports reduced durability, like
	// AddImage's contract (the next checkpoint persists everything).
	var walErr error
	if len(walDocs) > 0 {
		walErr = m.logWAL(walRecord{Op: "publish", Base: base, Docs: walDocs})
	}
	st.Merges = m.compactLocked()
	if err := m.publishEpochLocked(); err != nil {
		return st, err
	}
	ep := m.currentEpoch()
	st.NewDocs, st.Docs, st.Epoch, st.Segments = len(urls), ep.Docs, ep.Seq, m.maxSegments()
	if walErr != nil {
		return st, fmt.Errorf("core: delta published but not WAL-logged (will persist at next checkpoint): %w", walErr)
	}
	return st, nil
}

// applyDeltaLocked is the shared delta-apply path: the live publish and
// WAL replay both run it, so a replayed publish reconstructs the exact
// index state the live one built. It inserts the documents into the
// internal set, unions vocabularies, derives the delta segment and — when
// refinalize is true (standalone stores; a shard defers until its engine
// has re-registered the global statistics) — recomputes beliefs and
// extends the thesaurus. Callers hold m.mu (write).
func (m *Mirror) applyDeltaLocked(urls []string, words map[string][]string, annVocab, imgVocab []string, refinalize bool) ([]walDoc, error) {
	// Upgrade a store checkpointed before segmentation existed: its
	// monolithic derived columns become segment 0. Shards defer the
	// upgrade too (it recomputes beliefs).
	if refinalize {
		for _, prefix := range contrepPrefixes {
			if err := ir.EnsureSegmented(m.DB, prefix); err != nil {
				return nil, err
			}
		}
		if err := m.ensureCodecLocked(); err != nil {
			return nil, err
		}
	}
	base := m.coveredLocked()
	annB, _ := m.DB.BAT(LibrarySet + "_annotation")
	walDocs := make([]walDoc, 0, len(urls))
	var thDocs []thesaurus.Doc
	for i, url := range urls {
		var ann string
		if annB != nil {
			if v, ok := annB.Find(orderOID(base + i)); ok {
				ann, _ = v.(string)
			}
		}
		terms := dedupSorted(append([]string(nil), words[url]...))
		oid, err := m.DB.Insert(InternalSet, map[string]any{
			"source": url, "annotation": ann, "image": terms,
		})
		if err != nil {
			return nil, fmt.Errorf("core: delta insert %s: %w", url, err)
		}
		m.contentTerms[oid] = terms
		walDocs = append(walDocs, walDoc{URL: url, Words: terms})
		if ann != "" {
			thDocs = append(thDocs, thesaurus.Doc{Words: ir.Analyze(ann), Concepts: terms})
		}
	}
	if annVocab != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_annotation", annVocab); err != nil {
			return nil, err
		}
	}
	if imgVocab != nil {
		if err := ir.EnsureDictTerms(m.DB, InternalSet+"_image", imgVocab); err != nil {
			return nil, err
		}
	}
	if !refinalize {
		// Shard member: segment derivation and belief recomputation need
		// the engine's global statistics; it runs finishDeferredDelta once
		// every shard has replayed. Stash the thesaurus contribution for
		// the engine to fold into the shared instance.
		m.deferredThes = append(m.deferredThes, thDocs...)
		m.deferredDelta = true
		return walDocs, nil
	}
	for _, prefix := range contrepPrefixes {
		if _, err := ir.AppendSegment(m.DB, prefix); err != nil {
			return nil, err
		}
		if err := ir.RefinalizeSegments(m.DB, prefix); err != nil {
			return nil, err
		}
	}
	switch {
	case m.Thes != nil:
		m.Thes.AddDocs(thDocs)
	case len(thDocs) > 0:
		m.Thes = thesaurus.Build(thDocs)
	}
	return walDocs, nil
}

// compactLocked applies the tiered bounded-fan-in merge policy until no
// run qualifies, logging each merge so recovery replays the identical
// segment layout. Merges concatenate postings and copy beliefs —
// statistics do not move — so queries over the compacted layout are
// BUN-identical (the ir and bat segment tests pin this).
func (m *Mirror) compactLocked() int {
	merges := 0
	for _, prefix := range contrepPrefixes {
		for {
			stats := ir.SegmentStats(m.DB, prefix)
			sizes := make([]int, len(stats))
			for i, s := range stats {
				sizes[i] = s.Postings + s.Docs // empty-annotation deltas still weigh
			}
			lo, hi, ok := ir.PickMerge(sizes, mergeFanIn)
			if !ok {
				break
			}
			if err := ir.MergeSegments(m.DB, prefix, lo, hi); err != nil {
				break // structural mismatch: leave the layout as is, queries stay exact
			}
			// Best-effort logging, same durability contract as the publish
			// record above.
			_ = m.logWAL(walRecord{Op: "merge", Prefix: prefix, MergeLo: lo, MergeHi: hi, SegsBefore: len(stats)})
			merges++
		}
	}
	return merges
}

// orderOID converts an ingestion-order position to the library OID (they
// coincide: the library set is append-only in ingestion order).
func orderOID(pos int) uint64 { return uint64(pos) }
