package daemon

import (
	"bytes"
	"math/rand"
	"testing"

	"mirror/internal/dict"
	"mirror/internal/feature"
	"mirror/internal/media"
	"mirror/internal/thesaurus"
)

func testPPM(t *testing.T, classes ...string) []byte {
	t.Helper()
	idx := make([]int, len(classes))
	for i, c := range classes {
		idx[i] = media.ClassIndex(c)
	}
	sc := media.GenerateScene(rand.New(rand.NewSource(3)), 48, 48, idx)
	var buf bytes.Buffer
	if err := sc.Img.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSegmentDaemonOverRPC(t *testing.T) {
	h, err := Start("seg-test", "segmenter", "Segment", nil, NewSegmentService(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	c, err := Dial(h.Info)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Segment(testPPM(t, "sky", "night"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Tiles) < 2 || len(reply.BBoxes) != len(reply.Tiles) {
		t.Fatalf("segments = %d", len(reply.Tiles))
	}
	if _, err := c.Segment([]byte("not a ppm")); err == nil {
		t.Fatal("bad payload should error")
	}
}

func TestFeatureDaemonOverRPC(t *testing.T) {
	ex := feature.NewRGBHistogram("rgb_coarse", 2)
	h, err := Start("rgb-test", "feature", "Feature", []string{ex.Name()}, &FeatureService{Ex: ex}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	c, err := Dial(h.Info)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vec, err := c.Extract(testPPM(t, "water"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != ex.Dim() {
		t.Fatalf("vector dim = %d, want %d", len(vec), ex.Dim())
	}
	// tile-restricted extraction
	vec2, err := c.Extract(testPPM(t, "water"), [][4]int{{0, 0, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vec2) != ex.Dim() {
		t.Fatalf("tile vector dim = %d", len(vec2))
	}
}

func TestClusterDaemonOverRPC(t *testing.T) {
	h, err := Start("ac-test", "cluster", "Cluster", nil, &ClusterService{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	c, err := Dial(h.Info)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, 60)
	for i := range data {
		base := float64(i%2) * 10
		data[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	reply, err := c.Fit(data, 1, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ChoseK != 2 {
		t.Fatalf("chose K = %d, want 2", reply.ChoseK)
	}
	if len(reply.Assign) != 60 {
		t.Fatalf("assignments = %d", len(reply.Assign))
	}
	if reply.Assign[0] == reply.Assign[1] {
		t.Fatal("adjacent items belong to different blobs")
	}
	if _, err := c.Fit(nil, 1, 2, 0); err == nil {
		t.Fatal("empty fit should error")
	}
}

func TestThesaurusDaemonOverRPC(t *testing.T) {
	h, err := Start("th-test", "thesaurus", "Thesaurus", nil, &ThesaurusService{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	c, err := Dial(h.Info)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Associate([]string{"x"}, 1); err == nil {
		t.Fatal("untrained thesaurus should error")
	}
	err = c.Train([]thesaurus.Doc{
		{Words: []string{"ocean"}, Concepts: []string{"c1"}},
		{Words: []string{"forest"}, Concepts: []string{"c2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	as, err := c.Associate([]string{"ocean"}, 1)
	if err != nil || len(as) != 1 || as[0].Concept != "c1" {
		t.Fatalf("associate = %v, %v", as, err)
	}
	if err := c.Reinforce([]string{"ocean"}, []string{"c2"}, true); err != nil {
		t.Fatal(err)
	}
}

func TestStartDemoDaemonsRegistersAll(t *testing.T) {
	dictAddr, stop, err := dict.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	handles, err := StartDemoDaemons(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, h := range handles {
			h.Stop()
		}
	}()
	// 1 segmenter + 6 feature + 1 cluster + 1 thesaurus
	if len(handles) != 9 {
		t.Fatalf("handles = %d, want 9", len(handles))
	}
	dc, err := dict.Dial(dictAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	feats, err := dc.List("feature")
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 6 {
		t.Fatalf("feature daemons = %d, want 6", len(feats))
	}
	segs, _ := dc.List("segmenter")
	clus, _ := dc.List("cluster")
	ths, _ := dc.List("thesaurus")
	if len(segs) != 1 || len(clus) != 1 || len(ths) != 1 {
		t.Fatalf("daemon kinds: seg=%d cluster=%d thesaurus=%d", len(segs), len(clus), len(ths))
	}
}
