// Package daemon implements the daemon framework of Figure 1. "The notion
// of a 'daemon' abstracts from the various techniques for meta data
// extraction and query formulation"; here every daemon is a net/rpc
// service (the CORBA substitute) that registers itself with the
// distributed data dictionary so the other parties can discover it.
//
// The package ships the demo prototype's daemon set: the segmenter, the
// feature extraction daemons (two colour, four texture), the AutoClass
// clustering daemon and the thesaurus daemon.
package daemon

import (
	"bytes"
	"fmt"
	"net"
	"net/rpc"

	"mirror/internal/cluster"
	"mirror/internal/dict"
	"mirror/internal/feature"
	"mirror/internal/media"
	"mirror/internal/thesaurus"
)

// Handle is a running daemon: its registration info plus a stop function.
type Handle struct {
	Info dict.DaemonInfo
	stop func()
}

// Stop terminates the daemon's listener.
func (h *Handle) Stop() { h.stop() }

// Start serves rcvr (an rpc service value) under serviceName on an
// ephemeral localhost port and registers it with the dictionary at
// dictAddr (skipped when dictAddr is empty, for in-process tests).
func Start(name, kind, serviceName string, provides []string, rcvr any, dictAddr string) (*Handle, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("daemon %s: listen: %w", name, err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, rcvr); err != nil {
		l.Close()
		return nil, fmt.Errorf("daemon %s: register: %w", name, err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	info := dict.DaemonInfo{Name: name, Kind: kind, Addr: l.Addr().String(), Provides: provides}
	if dictAddr != "" {
		dc, err := dict.Dial(dictAddr)
		if err != nil {
			l.Close()
			return nil, err
		}
		defer dc.Close()
		if err := dc.Register(info); err != nil {
			l.Close()
			return nil, fmt.Errorf("daemon %s: dictionary registration: %w", name, err)
		}
	}
	return &Handle{Info: info, stop: func() { l.Close() }}, nil
}

// ---- segmenter daemon ----

// SegmentArgs carries one image as PPM bytes.
type SegmentArgs struct{ PPM []byte }

// SegmentReply returns the segments as tile lists plus bounding boxes.
type SegmentReply struct {
	Tiles  [][][4]int
	BBoxes [][4]int
}

// SegmentService is the segmentation daemon.
type SegmentService struct{ Seg *feature.Segmenter }

// NewSegmentService returns the demo segmenter daemon.
func NewSegmentService() *SegmentService {
	return &SegmentService{Seg: feature.NewSegmenter()}
}

// Segment implements the RPC method.
func (s *SegmentService) Segment(args SegmentArgs, reply *SegmentReply) error {
	img, err := media.DecodePPM(bytes.NewReader(args.PPM))
	if err != nil {
		return err
	}
	for _, seg := range s.Seg.Segment(img) {
		reply.Tiles = append(reply.Tiles, seg.Tiles)
		reply.BBoxes = append(reply.BBoxes, seg.BBox)
	}
	return nil
}

// ---- feature daemons ----

// ExtractArgs carries an image plus the tile set of one segment.
type ExtractArgs struct {
	PPM   []byte
	Tiles [][4]int // empty: whole image
}

// ExtractReply returns the feature vector.
type ExtractReply struct{ Vector []float64 }

// FeatureService wraps one extractor as a daemon.
type FeatureService struct{ Ex feature.Extractor }

// Extract implements the RPC method.
func (s *FeatureService) Extract(args ExtractArgs, reply *ExtractReply) error {
	img, err := media.DecodePPM(bytes.NewReader(args.PPM))
	if err != nil {
		return err
	}
	if len(args.Tiles) == 0 {
		reply.Vector = s.Ex.Extract(img)
		return nil
	}
	seg := &feature.Segment{Tiles: args.Tiles}
	reply.Vector = seg.ExtractAveraged(img, s.Ex)
	return nil
}

// ---- clustering daemon (AutoClass) ----

// FitArgs carries a feature matrix and the class search range.
type FitArgs struct {
	Data       [][]float64
	KMin, KMax int
	Seed       int64
}

// FitReply returns the selected model and the assignment of each input row.
type FitReply struct {
	Model   cluster.Model
	Assign  []int
	ChoseK  int
	DataBIC float64
}

// ClusterService is the AutoClass daemon.
type ClusterService struct{}

// Fit implements the RPC method: standardise, model-select, assign.
func (*ClusterService) Fit(args FitArgs, reply *FitReply) error {
	if len(args.Data) == 0 {
		return fmt.Errorf("daemon: cluster fit on empty data")
	}
	std, means, stds := cluster.Standardize(args.Data)
	m, err := cluster.Select(std, args.KMin, args.KMax, args.Seed)
	if err != nil {
		return err
	}
	reply.Model = *m
	reply.ChoseK = m.K
	reply.DataBIC = m.BIC
	reply.Assign = make([]int, len(args.Data))
	for i, x := range args.Data {
		reply.Assign[i] = m.Assign(cluster.ApplyStandardize(x, means, stds))
	}
	return nil
}

// ---- thesaurus daemon ----

// ThesaurusService holds a built association thesaurus and serves query
// formulation ("thesaurus daemons are interactively used during query
// formulation").
type ThesaurusService struct{ th *thesaurus.Thesaurus }

// TrainArgs carries the co-occurrence training data.
type TrainArgs struct{ Docs []thesaurus.Doc }

// AssociateArgs asks for the concepts associated with query words.
type AssociateArgs struct {
	Words []string
	K     int
}

// AssociateReply returns ranked associations.
type AssociateReply struct{ Associations []thesaurus.Association }

// ReinforceArgs carries one feedback observation.
type ReinforceArgs struct {
	Words    []string
	Concepts []string
	Relevant bool
}

// Train (re)builds the thesaurus.
func (s *ThesaurusService) Train(args TrainArgs, ack *bool) error {
	s.th = thesaurus.Build(args.Docs)
	*ack = true
	return nil
}

// Associate ranks concepts for query words.
func (s *ThesaurusService) Associate(args AssociateArgs, reply *AssociateReply) error {
	if s.th == nil {
		return fmt.Errorf("daemon: thesaurus not trained")
	}
	reply.Associations = s.th.Associate(args.Words, args.K)
	return nil
}

// Reinforce applies relevance feedback to the thesaurus.
func (s *ThesaurusService) Reinforce(args ReinforceArgs, ack *bool) error {
	if s.th == nil {
		return fmt.Errorf("daemon: thesaurus not trained")
	}
	s.th.Reinforce(args.Words, args.Concepts, args.Relevant)
	*ack = true
	return nil
}

// ---- typed clients ----

// Client wraps an rpc connection to one daemon.
type Client struct {
	c       *rpc.Client
	service string
}

// Dial connects to a daemon given its registration.
func Dial(info dict.DaemonInfo) (*Client, error) {
	c, err := rpc.Dial("tcp", info.Addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dial %s (%s): %w", info.Name, info.Addr, err)
	}
	service := serviceNameFor(info.Kind)
	return &Client{c: c, service: service}, nil
}

// serviceNameFor maps a daemon kind to its rpc service name.
func serviceNameFor(kind string) string {
	switch kind {
	case "segmenter":
		return "Segment"
	case "feature":
		return "Feature"
	case "cluster":
		return "Cluster"
	case "thesaurus":
		return "Thesaurus"
	}
	return kind
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// Segment calls a segmenter daemon.
func (c *Client) Segment(ppm []byte) (*SegmentReply, error) {
	var reply SegmentReply
	err := c.c.Call(c.service+".Segment", SegmentArgs{PPM: ppm}, &reply)
	return &reply, err
}

// Extract calls a feature daemon.
func (c *Client) Extract(ppm []byte, tiles [][4]int) ([]float64, error) {
	var reply ExtractReply
	err := c.c.Call(c.service+".Extract", ExtractArgs{PPM: ppm, Tiles: tiles}, &reply)
	return reply.Vector, err
}

// Fit calls the clustering daemon.
func (c *Client) Fit(data [][]float64, kmin, kmax int, seed int64) (*FitReply, error) {
	var reply FitReply
	err := c.c.Call(c.service+".Fit", FitArgs{Data: data, KMin: kmin, KMax: kmax, Seed: seed}, &reply)
	return &reply, err
}

// Train trains the thesaurus daemon.
func (c *Client) Train(docs []thesaurus.Doc) error {
	var ack bool
	return c.c.Call(c.service+".Train", TrainArgs{Docs: docs}, &ack)
}

// Associate queries the thesaurus daemon.
func (c *Client) Associate(words []string, k int) ([]thesaurus.Association, error) {
	var reply AssociateReply
	err := c.c.Call(c.service+".Associate", AssociateArgs{Words: words, K: k}, &reply)
	return reply.Associations, err
}

// Reinforce sends feedback to the thesaurus daemon.
func (c *Client) Reinforce(words, concepts []string, relevant bool) error {
	var ack bool
	return c.c.Call(c.service+".Reinforce", ReinforceArgs{Words: words, Concepts: concepts, Relevant: relevant}, &ack)
}

// StartDemoDaemons launches the full prototype daemon set of Section 5.1
// (one segmenter, two colour daemons, four texture daemons, AutoClass, one
// thesaurus), registering each with the dictionary. It returns handles in
// start order.
func StartDemoDaemons(dictAddr string) ([]*Handle, error) {
	var handles []*Handle
	fail := func(err error) ([]*Handle, error) {
		for _, h := range handles {
			h.Stop()
		}
		return nil, err
	}
	h, err := Start("segmenter-1", "segmenter", "Segment", nil, NewSegmentService(), dictAddr)
	if err != nil {
		return fail(err)
	}
	handles = append(handles, h)
	for _, ex := range feature.All() {
		h, err := Start(ex.Name()+"-1", "feature", "Feature", []string{ex.Name()}, &FeatureService{Ex: ex}, dictAddr)
		if err != nil {
			return fail(err)
		}
		handles = append(handles, h)
	}
	h, err = Start("autoclass-1", "cluster", "Cluster", nil, &ClusterService{}, dictAddr)
	if err != nil {
		return fail(err)
	}
	handles = append(handles, h)
	h, err = Start("thesaurus-1", "thesaurus", "Thesaurus", nil, &ThesaurusService{}, dictAddr)
	if err != nil {
		return fail(err)
	}
	handles = append(handles, h)
	return handles, nil
}
