// Package dict implements the distributed data dictionary of Figure 1: the
// registry through which the loosely-coupled parties of a digital library
// find each other. Daemons (meta-data extractors, thesaurus servers)
// register themselves; the Mirror DBMS and clients look them up; the
// library schema is published here so every party agrees on it. The
// transport is net/rpc over TCP — the stand-in for CORBA's location-
// independent invocation.
package dict

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"
)

// DaemonInfo describes one registered daemon.
type DaemonInfo struct {
	Name     string // unique instance name, e.g. "gabor-1"
	Kind     string // "segmenter", "feature", "cluster", "thesaurus", "dbms", "mediaserver"
	Addr     string // host:port of the daemon's RPC endpoint
	Provides []string
	Since    time.Time
}

// Dictionary is the registry state.
type Dictionary struct {
	mu      sync.RWMutex
	daemons map[string]DaemonInfo
	schema  string
	meta    map[string]string
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{daemons: map[string]DaemonInfo{}, meta: map[string]string{}}
}

// Service is the RPC surface of the dictionary.
type Service struct{ d *Dictionary }

// RegisterArgs names the RPC argument types (net/rpc needs exported
// concrete types).
type (
	RegisterArgs   struct{ Info DaemonInfo }
	ListArgs       struct{ Kind string } // "" lists everything
	SetSchemaArgs  struct{ Source string }
	SetMetaArgs    struct{ Key, Value string }
	GetMetaArgs    struct{ Key string }
	DeregisterArgs struct{ Name string }
	Empty          struct{}
)

// Register adds or replaces a daemon registration.
func (s *Service) Register(args RegisterArgs, ack *bool) error {
	if args.Info.Name == "" || args.Info.Addr == "" {
		return fmt.Errorf("dict: registration needs name and addr")
	}
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	info := args.Info
	if info.Since.IsZero() {
		info.Since = time.Now()
	}
	s.d.daemons[info.Name] = info
	*ack = true
	return nil
}

// Deregister removes a daemon.
func (s *Service) Deregister(args DeregisterArgs, ack *bool) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	delete(s.d.daemons, args.Name)
	*ack = true
	return nil
}

// List returns registered daemons of a kind (or all), sorted by name.
func (s *Service) List(args ListArgs, out *[]DaemonInfo) error {
	s.d.mu.RLock()
	defer s.d.mu.RUnlock()
	for _, d := range s.d.daemons {
		if args.Kind == "" || d.Kind == args.Kind {
			*out = append(*out, d)
		}
	}
	sort.Slice(*out, func(i, j int) bool { return (*out)[i].Name < (*out)[j].Name })
	return nil
}

// SetSchema publishes the library schema (Moa DDL text).
func (s *Service) SetSchema(args SetSchemaArgs, ack *bool) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	s.d.schema = args.Source
	*ack = true
	return nil
}

// GetSchema retrieves the published schema.
func (s *Service) GetSchema(_ Empty, out *string) error {
	s.d.mu.RLock()
	defer s.d.mu.RUnlock()
	*out = s.d.schema
	return nil
}

// SetMeta stores an arbitrary metadata entry (e.g. collection progress).
func (s *Service) SetMeta(args SetMetaArgs, ack *bool) error {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	s.d.meta[args.Key] = args.Value
	*ack = true
	return nil
}

// GetMeta fetches a metadata entry ("" when absent).
func (s *Service) GetMeta(args GetMetaArgs, out *string) error {
	s.d.mu.RLock()
	defer s.d.mu.RUnlock()
	*out = s.d.meta[args.Key]
	return nil
}

// Serve runs the dictionary RPC server on l until the listener closes.
// It returns immediately; callers stop it by closing l.
func Serve(l net.Listener, d *Dictionary) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Dict", &Service{d: d}); err != nil {
		panic(err) // impossible: Service satisfies the rpc contract
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port), serves a
// fresh dictionary, and returns its client address and a stop function.
func Start(addr string) (string, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("dict: listen %s: %w", addr, err)
	}
	Serve(l, New())
	return l.Addr().String(), func() { l.Close() }, nil
}

// Client is a typed client for the dictionary service.
type Client struct{ c *rpc.Client }

// Dial connects to a dictionary.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dict: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// Register registers a daemon.
func (c *Client) Register(info DaemonInfo) error {
	var ack bool
	return c.c.Call("Dict.Register", RegisterArgs{Info: info}, &ack)
}

// Deregister removes a daemon.
func (c *Client) Deregister(name string) error {
	var ack bool
	return c.c.Call("Dict.Deregister", DeregisterArgs{Name: name}, &ack)
}

// List fetches registrations of a kind ("" for all).
func (c *Client) List(kind string) ([]DaemonInfo, error) {
	var out []DaemonInfo
	err := c.c.Call("Dict.List", ListArgs{Kind: kind}, &out)
	return out, err
}

// SetSchema publishes the schema.
func (c *Client) SetSchema(src string) error {
	var ack bool
	return c.c.Call("Dict.SetSchema", SetSchemaArgs{Source: src}, &ack)
}

// GetSchema fetches the schema.
func (c *Client) GetSchema() (string, error) {
	var out string
	err := c.c.Call("Dict.GetSchema", Empty{}, &out)
	return out, err
}

// SetMeta stores a metadata entry.
func (c *Client) SetMeta(key, value string) error {
	var ack bool
	return c.c.Call("Dict.SetMeta", SetMetaArgs{Key: key, Value: value}, &ack)
}

// GetMeta fetches a metadata entry.
func (c *Client) GetMeta(key string) (string, error) {
	var out string
	err := c.c.Call("Dict.GetMeta", GetMetaArgs{Key: key}, &out)
	return out, err
}
