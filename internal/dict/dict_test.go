package dict

import (
	"testing"
)

func startTestDict(t *testing.T) (string, *Client) {
	t.Helper()
	addr, stop, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return addr, c
}

func TestRegisterListDeregister(t *testing.T) {
	_, c := startTestDict(t)
	if err := c.Register(DaemonInfo{Name: "gabor-1", Kind: "feature", Addr: "x:1", Provides: []string{"gabor"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(DaemonInfo{Name: "seg-1", Kind: "segmenter", Addr: "x:2"}); err != nil {
		t.Fatal(err)
	}
	all, err := c.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
	feats, err := c.List("feature")
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 1 || feats[0].Name != "gabor-1" || feats[0].Provides[0] != "gabor" {
		t.Fatalf("features = %v", feats)
	}
	if err := c.Deregister("gabor-1"); err != nil {
		t.Fatal(err)
	}
	feats, _ = c.List("feature")
	if len(feats) != 0 {
		t.Fatalf("after deregister: %v", feats)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, c := startTestDict(t)
	if err := c.Register(DaemonInfo{Name: "", Addr: "x"}); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := c.Register(DaemonInfo{Name: "x", Addr: ""}); err == nil {
		t.Fatal("empty addr should fail")
	}
}

func TestSchemaAndMeta(t *testing.T) {
	_, c := startTestDict(t)
	src := "define X as SET<Atomic<int>>;"
	if err := c.SetSchema(src); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetSchema()
	if err != nil || got != src {
		t.Fatalf("schema = %q, %v", got, err)
	}
	if err := c.SetMeta("progress", "42"); err != nil {
		t.Fatal(err)
	}
	v, err := c.GetMeta("progress")
	if err != nil || v != "42" {
		t.Fatalf("meta = %q, %v", v, err)
	}
	v, _ = c.GetMeta("absent")
	if v != "" {
		t.Fatalf("absent meta = %q", v)
	}
}

func TestReplaceRegistration(t *testing.T) {
	_, c := startTestDict(t)
	c.Register(DaemonInfo{Name: "d", Kind: "feature", Addr: "a:1"})
	c.Register(DaemonInfo{Name: "d", Kind: "feature", Addr: "a:2"})
	list, _ := c.List("feature")
	if len(list) != 1 || list[0].Addr != "a:2" {
		t.Fatalf("replacement failed: %v", list)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}
