package mil

import (
	"fmt"
	"sort"

	"mirror/internal/bat"
)

// builtinFn is the signature of a MIL builtin. The environment is passed so
// that print can reach Env.Out.
type builtinFn func(env *Env, args []any) (any, error)

// builtins is the registry of all MIL functions. It is populated in init so
// helper closures can reference each other.
var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		// construction and mutation
		"new":    biNew,
		"insert": biInsert,

		// shape
		"reverse": bat1(func(b *bat.BAT) (any, error) { return b.Reverse(), nil }),
		"mirror":  bat1(func(b *bat.BAT) (any, error) { return b.Mirror(), nil }),
		"mark":    biMark,
		"clone":   bat1(func(b *bat.BAT) (any, error) { return b.Clone(), nil }),
		"number":  bat1(func(b *bat.BAT) (any, error) { return bat.Number(b), nil }),

		// selection
		"select":      biSelect,
		"uselect":     biUSelect,
		"select_not":  biSelectNot,
		"like_select": biLikeSelect,

		// joins and set operations
		"join":       bat2(bat.Join),
		"leftjoin":   bat2(bat.LeftJoin),
		"semijoin":   bat2(bat.SemiJoin),
		"kdiff":      bat2(bat.Diff),
		"kunion":     bat2(bat.Union),
		"kintersect": bat2(bat.Intersect),
		"cross":      bat2(bat.CrossProduct),

		// grouping
		"group":   bat1(func(b *bat.BAT) (any, error) { return bat.Group(b) }),
		"refine":  bat2(bat.GroupRefine),
		"kunique": bat1(func(b *bat.BAT) (any, error) { return bat.Unique(b) }),

		// scalar aggregates
		"sum":   scalarAgg(bat.AggSum),
		"count": scalarAgg(bat.AggCount),
		"min":   scalarAgg(bat.AggMin),
		"max":   scalarAgg(bat.AggMax),
		"avg":   scalarAgg(bat.AggAvg),
		"prod":  scalarAgg(bat.AggProd),

		// ordering
		"tsort":     bat1(func(b *bat.BAT) (any, error) { return bat.TSort(b) }),
		"tsort_rev": bat1(func(b *bat.BAT) (any, error) { return bat.TSortRev(b) }),
		"hsort":     bat1(func(b *bat.BAT) (any, error) { return bat.HSort(b) }),
		"topn":      biTopN,
		"slice":     biSlice,
		"fetch":     biFetch,
		"hfetch":    biHFetch,
		"histogram": bat1(func(b *bat.BAT) (any, error) { return bat.Histogram(b) }),

		// lookup
		"find":   biFind,
		"exists": biExists,

		// probabilistic retrieval operators (the paper's physical extension)
		"getbl":         biGetBL,
		"wsum_bel":      biWSumBel,
		"prunedtopk":    biPrunedTopK,
		"prunedtopkseg": biPrunedTopKSeg,
		"prunedtopkblk": biPrunedTopKBlk,
		"postings":      biPostings,

		// I/O
		"print": biPrint,

		// execution control: parallelism() reports the kernel's worker
		// count, parallelism(n) overrides it (0 restores the machine
		// default) and returns the previous override — MIL programs and
		// tests steer the parallel BAT kernel without recompiling.
		"parallelism":        biParallelism,
		"parallel_threshold": biParallelThreshold,
	}
}

// BuiltinNames lists every registered MIL builtin, sorted. The repo's
// docs test uses it to keep docs/MIL.md complete: adding a builtin
// without documenting it fails CI.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func biParallelism(_ *Env, args []any) (any, error) {
	switch len(args) {
	case 0:
		return int64(bat.Parallelism()), nil
	case 1:
		n, err := argInt(args, 0)
		if err != nil {
			return nil, err
		}
		return int64(bat.SetParallelism(int(n))), nil
	}
	return nil, errorf("parallelism: want 0 or 1 arguments, got %d", len(args))
}

func biParallelThreshold(_ *Env, args []any) (any, error) {
	switch len(args) {
	case 0:
		return int64(bat.ParallelThreshold()), nil
	case 1:
		n, err := argInt(args, 0)
		if err != nil {
			return nil, err
		}
		return int64(bat.SetParallelThreshold(int(n))), nil
	}
	return nil, errorf("parallel_threshold: want 0 or 1 arguments, got %d", len(args))
}

// ---- argument helpers ----

func argBAT(args []any, i int) (*bat.BAT, error) {
	if i >= len(args) {
		return nil, errorf("missing argument %d", i+1)
	}
	b, ok := args[i].(*bat.BAT)
	if !ok {
		return nil, errorf("argument %d must be a BAT, got %T", i+1, args[i])
	}
	return b, nil
}

func argInt(args []any, i int) (int64, error) {
	if i >= len(args) {
		return 0, errorf("missing argument %d", i+1)
	}
	switch v := args[i].(type) {
	case int64:
		return v, nil
	case bat.OID:
		return int64(v), nil
	case float64:
		return int64(v), nil
	}
	return 0, errorf("argument %d must be an int, got %T", i+1, args[i])
}

func argFloat(args []any, i int) (float64, error) {
	if i >= len(args) {
		return 0, errorf("missing argument %d", i+1)
	}
	switch v := args[i].(type) {
	case float64:
		return v, nil
	case int64:
		return float64(v), nil
	}
	return 0, errorf("argument %d must be a float, got %T", i+1, args[i])
}

func argStr(args []any, i int) (string, error) {
	if i >= len(args) {
		return "", errorf("missing argument %d", i+1)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", errorf("argument %d must be a string, got %T", i+1, args[i])
	}
	return s, nil
}

func wantArgs(args []any, n int) error {
	if len(args) != n {
		return errorf("want %d arguments, got %d", n, len(args))
	}
	return nil
}

// bat1 adapts a unary BAT function.
func bat1(f func(*bat.BAT) (any, error)) builtinFn {
	return func(_ *Env, args []any) (any, error) {
		if err := wantArgs(args, 1); err != nil {
			return nil, err
		}
		b, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		return f(b)
	}
}

// bat2 adapts a binary BAT function.
func bat2(f func(a, b *bat.BAT) (*bat.BAT, error)) builtinFn {
	return func(_ *Env, args []any) (any, error) {
		if err := wantArgs(args, 2); err != nil {
			return nil, err
		}
		a, err := argBAT(args, 0)
		if err != nil {
			return nil, err
		}
		b, err := argBAT(args, 1)
		if err != nil {
			return nil, err
		}
		return f(a, b)
	}
}

func scalarAgg(k bat.AggKind) builtinFn {
	return bat1(func(b *bat.BAT) (any, error) { return bat.ScalarAggregate(k, b) })
}

// ---- individual builtins ----

func biNew(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	hs, err := argStr(args, 0)
	if err != nil {
		return nil, err
	}
	ts, err := argStr(args, 1)
	if err != nil {
		return nil, err
	}
	hk, err := bat.KindFromString(hs)
	if err != nil {
		return nil, err
	}
	tk, err := bat.KindFromString(ts)
	if err != nil {
		return nil, err
	}
	return bat.New(hk, tk), nil
}

func biInsert(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	if err := b.Append(args[1], args[2]); err != nil {
		return nil, err
	}
	return b, nil
}

func biMark(_ *Env, args []any) (any, error) {
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	base := int64(0)
	if len(args) > 1 {
		base, err = argInt(args, 1)
		if err != nil {
			return nil, err
		}
	}
	return b.Mark(bat.OID(base)), nil
}

func biSelect(_ *Env, args []any) (any, error) {
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	switch len(args) {
	case 2:
		return bat.Select(b, args[1])
	case 3:
		return bat.SelectRange(b, args[1], args[2])
	}
	return nil, errorf("select: want 2 or 3 arguments, got %d", len(args))
}

func biUSelect(_ *Env, args []any) (any, error) {
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	switch len(args) {
	case 2:
		return bat.USelect(b, args[1])
	case 3:
		return bat.USelectRange(b, args[1], args[2])
	}
	return nil, errorf("uselect: want 2 or 3 arguments, got %d", len(args))
}

func biSelectNot(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	return bat.SelectNot(b, args[1])
}

func biLikeSelect(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	pat, err := argStr(args, 1)
	if err != nil {
		return nil, err
	}
	return bat.LikeSelect(b, pat)
}

func biTopN(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	n, err := argInt(args, 1)
	if err != nil {
		return nil, err
	}
	return bat.TopN(b, int(n))
}

func biSlice(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	lo, err := argInt(args, 1)
	if err != nil {
		return nil, err
	}
	hi, err := argInt(args, 2)
	if err != nil {
		return nil, err
	}
	return b.Slice(int(lo), int(hi))
}

func biFetch(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	i, err := argInt(args, 1)
	if err != nil {
		return nil, err
	}
	_, t, err := b.Fetch(int(i))
	return t, err
}

func biHFetch(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	i, err := argInt(args, 1)
	if err != nil {
		return nil, err
	}
	h, _, err := b.Fetch(int(i))
	return h, err
}

func biFind(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	v, ok := b.Find(args[1])
	if !ok {
		return nil, errorf("find: head value %v not present", args[1])
	}
	return v, nil
}

func biExists(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 2); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	return b.Exists(args[1]), nil
}

// biGetBL is the MIL surface of the probabilistic physical operator:
//
//	getbl(revterm, doc, belief, query, default) → [docOID, score]
//
// query is a BAT whose tail holds the query-term OIDs; default is the
// inference network's default belief for unmatched terms.
func biGetBL(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 5); err != nil {
		return nil, err
	}
	rev, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	doc, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	bel, err := argBAT(args, 2)
	if err != nil {
		return nil, err
	}
	qb, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 4)
	if err != nil {
		return nil, err
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	beliefs, counts, err := bat.GetBL(rev, doc, bel, query)
	if err != nil {
		return nil, err
	}
	return bat.SumBeliefs(beliefs, counts, len(query), def)
}

// biWSumBel: wsum_bel(revterm, doc, belief, query, weights, default).
func biWSumBel(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 6); err != nil {
		return nil, err
	}
	rev, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	doc, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	bel, err := argBAT(args, 2)
	if err != nil {
		return nil, err
	}
	qb, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	wb, err := argBAT(args, 4)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 5)
	if err != nil {
		return nil, err
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	weights := make([]float64, wb.Len())
	for i := range weights {
		weights[i] = wb.Tail.FloatAt(i)
	}
	return bat.WSumBeliefs(rev, doc, bel, query, weights, def)
}

// biPrunedTopK is the MIL surface of the pruned ranked-retrieval operator:
//
//	prunedtopk(poststart, postdoc, postbel, maxbel, query, default, k, domain)
//	    → [docOID, score]
//
// It evaluates the inference-network sum score with max-score skipping over
// the term-ordered postings (bat.PrunedTopK) and returns only the k best
// documents, already ordered score descending / OID ascending — identical
// BUN-for-BUN to getbl + fill + a full descending sort cut at k. domain
// supplies the OIDs of documents matching no query term (they score
// count(query)·default and are merged in when the match set cannot fill k).
func biPrunedTopK(env *Env, args []any) (any, error) {
	if err := wantArgs(args, 8); err != nil {
		return nil, err
	}
	start, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	doc, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	bel, err := argBAT(args, 2)
	if err != nil {
		return nil, err
	}
	maxb, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	qb, err := argBAT(args, 4)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 5)
	if err != nil {
		return nil, err
	}
	k, err := argInt(args, 6)
	if err != nil {
		return nil, err
	}
	domain, err := argBAT(args, 7)
	if err != nil {
		return nil, err
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	return bat.PrunedTopKShared(start, doc, bel, maxb, query, nil, def, int(k), domain, env.TopKTheta)
}

// biPrunedTopKSeg is the segment-list form of prunedtopk, the physical
// operator behind snapshot-isolated incremental indexes:
//
//	prunedtopkseg(query, default, k, domain,
//	              s0_start, s0_doc, s0_bel, s0_maxbel,
//	              [s1_start, s1_doc, s1_bel, s1_maxbel, ...])
//	    → [docOID, score]
//
// The segments must partition the document space (each document's
// postings entirely in one segment — which is how internal/ir publishes
// them); the result is then BUN-for-BUN identical to prunedtopk over the
// single segment obtained by merging the list, because all segments share
// one rising threshold and every score is the same canonical fold.
func biPrunedTopKSeg(env *Env, args []any) (any, error) {
	if len(args) < 8 || (len(args)-4)%4 != 0 {
		return nil, errorf("prunedtopkseg expects 4 scalar args plus 4 BATs per segment, got %d args", len(args))
	}
	qb, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 1)
	if err != nil {
		return nil, err
	}
	k, err := argInt(args, 2)
	if err != nil {
		return nil, err
	}
	domain, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	nsegs := (len(args) - 4) / 4
	segs := make([]bat.PostingsSeg, nsegs)
	for s := 0; s < nsegs; s++ {
		base := 4 + 4*s
		var cols [4]*bat.BAT
		for j := range cols {
			if cols[j], err = argBAT(args, base+j); err != nil {
				return nil, err
			}
		}
		segs[s] = bat.PostingsSeg{Start: cols[0], Doc: cols[1], Bel: cols[2], MaxBel: cols[3]}
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	return bat.PrunedTopKSegs(segs, query, nil, def, int(k), domain, env.TopKTheta)
}

// biPrunedTopKBlk is prunedtopkseg over block-compressed segments:
// prunedtopkblk(query, default, k, domain, then SEVEN BATs per segment —
// poststart, blkstart, blkdir, blkdoc, blkbdir, blkbel, maxbel (the
// bat/postcodec.go layout). Results are BUN-for-BUN identical to the raw
// operators over the same logical postings; only the decode path and the
// per-block bound skipping differ.
func biPrunedTopKBlk(env *Env, args []any) (any, error) {
	if len(args) < 11 || (len(args)-4)%7 != 0 {
		return nil, errorf("prunedtopkblk expects 4 scalar args plus 7 BATs per segment, got %d args", len(args))
	}
	qb, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 1)
	if err != nil {
		return nil, err
	}
	k, err := argInt(args, 2)
	if err != nil {
		return nil, err
	}
	domain, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	nsegs := (len(args) - 4) / 7
	segs := make([]bat.PostingsSeg, nsegs)
	for s := 0; s < nsegs; s++ {
		base := 4 + 7*s
		var cols [7]*bat.BAT
		for j := range cols {
			if cols[j], err = argBAT(args, base+j); err != nil {
				return nil, err
			}
		}
		segs[s] = bat.PostingsSeg{
			Start: cols[0], BlkStart: cols[1], BlkDir: cols[2], BlkDoc: cols[3],
			BlkBDir: cols[4], BlkBel: cols[5], MaxBel: cols[6],
		}
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	return bat.PrunedTopKSegs(segs, query, nil, def, int(k), domain, env.TopKTheta)
}

// biPostings: postings(poststart, postdoc, postbel, t) → [docOID, belief],
// one term's posting list in ascending document order (the postings-access
// primitive over the term-ordered representation).
func biPostings(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 4); err != nil {
		return nil, err
	}
	start, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	doc, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	bel, err := argBAT(args, 2)
	if err != nil {
		return nil, err
	}
	t, err := argInt(args, 3)
	if err != nil {
		return nil, err
	}
	return bat.Postings(start, doc, bel, bat.OID(t))
}

func biPrint(env *Env, args []any) (any, error) {
	for i, a := range args {
		if i > 0 {
			fmt.Fprint(env.Out, " ")
		}
		switch v := a.(type) {
		case *bat.BAT:
			fmt.Fprint(env.Out, v.String())
		default:
			fmt.Fprint(env.Out, bat.FormatValue(v))
		}
	}
	fmt.Fprintln(env.Out)
	if len(args) == 1 {
		return args[0], nil
	}
	return nil, nil
}

func init() {
	builtins["fill"] = biFill
	builtins["calc"] = biCalc
}

// biFill: fill(b, domain, v) — see bat.Fill. v is coerced to b's tail kind
// when numeric.
func biFill(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	b, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	domain, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	v := args[2]
	switch b.Tail.Kind() {
	case bat.KindFloat:
		if f, err2 := argFloat(args, 2); err2 == nil {
			v = f
		}
	case bat.KindInt:
		if n, err2 := argInt(args, 2); err2 == nil {
			v = n
		}
	}
	return bat.Fill(b, domain, v)
}

// biCalc: calc(op, a, b) — scalar arithmetic for the few places a MIL
// program needs to combine scalar results (e.g. qlen · defaultBelief).
func biCalc(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 3); err != nil {
		return nil, err
	}
	op, err := argStr(args, 0)
	if err != nil {
		return nil, err
	}
	a, err := argFloat(args, 1)
	if err != nil {
		return nil, err
	}
	b, err := argFloat(args, 2)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0.0, nil
		}
		return a / b, nil
	case "min":
		if a < b {
			return a, nil
		}
		return b, nil
	case "max":
		if a > b {
			return a, nil
		}
		return b, nil
	}
	return nil, errorf("calc: unknown operator %q", op)
}

func init() {
	builtins["getbl_pairs"] = biGetBLPairs
}

// biGetBLPairs: getbl_pairs(revterm, doc, belief, query, default, domain) —
// the materialising per-term belief operator (see bat.GetBLPairs).
func biGetBLPairs(_ *Env, args []any) (any, error) {
	if err := wantArgs(args, 6); err != nil {
		return nil, err
	}
	rev, err := argBAT(args, 0)
	if err != nil {
		return nil, err
	}
	doc, err := argBAT(args, 1)
	if err != nil {
		return nil, err
	}
	bel, err := argBAT(args, 2)
	if err != nil {
		return nil, err
	}
	qb, err := argBAT(args, 3)
	if err != nil {
		return nil, err
	}
	def, err := argFloat(args, 4)
	if err != nil {
		return nil, err
	}
	domain, err := argBAT(args, 5)
	if err != nil {
		return nil, err
	}
	query := make([]bat.OID, qb.Len())
	for i := range query {
		query[i] = qb.Tail.OIDAt(i)
	}
	return bat.GetBLPairs(rev, doc, bel, query, def, domain)
}
