package mil

import (
	"strconv"

	"mirror/internal/bat"
)

// Parse turns MIL source text into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	return prog, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, errorf("line %d: expected %s, got %q", p.tok.line, what, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	var st Stmt
	if p.tok.kind == tokIdent && p.tok.text == "var" {
		st.Decl = true
		if err := p.advance(); err != nil {
			return st, err
		}
		name, err := p.expect(tokIdent, "identifier after var")
		if err != nil {
			return st, err
		}
		st.Var = name.text
		if _, err := p.expect(tokAssign, ":="); err != nil {
			return st, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		st.Expr = e
		_, err = p.expect(tokSemi, ";")
		return st, err
	}

	// Could be `ident := expr;` or a bare expression.
	if p.tok.kind == tokIdent {
		name := p.tok.text
		save := *p.lx
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return st, err
		}
		if p.tok.kind == tokAssign {
			if err := p.advance(); err != nil {
				return st, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return st, err
			}
			st.Var, st.Expr = name, e
			_, err = p.expect(tokSemi, ";")
			return st, err
		}
		// backtrack: it was an expression starting with an identifier
		*p.lx = save
		p.tok = saveTok
	}
	e, err := p.parseExpr()
	if err != nil {
		return st, err
	}
	st.Expr = e
	_, err = p.expect(tokSemi, ";")
	return st, err
}

// parseExpr parses a primary followed by .method(...) chains.
func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "method name")
		if err != nil {
			return nil, err
		}
		args := []Expr{e}
		if p.tok.kind == tokLParen {
			more, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			args = append(args, more...)
		}
		e = &Call{Fn: name.text, Args: args}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, errorf("line %d: bad int %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: v}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, errorf("line %d: bad float %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: v}, nil
	case tokOID:
		v, err := strconv.ParseUint(p.tok.text, 10, 64)
		if err != nil {
			return nil, errorf("line %d: bad oid %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: bat.OID(v)}, nil
	case tokStr:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: s}, nil
	case tokOp:
		// unary minus on a numeric literal
		if p.tok.text == "-" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			l, ok := inner.(*Lit)
			if !ok {
				return nil, errorf("unary '-' only on literals")
			}
			switch x := l.V.(type) {
			case int64:
				return &Lit{V: -x}, nil
			case float64:
				return &Lit{V: -x}, nil
			}
			return nil, errorf("unary '-' on non-numeric literal")
		}
		return nil, errorf("line %d: unexpected operator %q", p.tok.line, p.tok.text)
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBracket:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var op string
		switch p.tok.kind {
		case tokOp, tokIdent:
			op = p.tok.text
		default:
			return nil, errorf("line %d: expected operator in [...], got %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &Mux{Op: op, Args: args}, nil
	case tokLBrace:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "aggregate name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace, "}"); err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &Pump{Agg: name.text, Args: args}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return &Lit{V: true}, nil
		case "false":
			return &Lit{V: false}, nil
		case "nil":
			return &Lit{V: nil}, nil
		}
		if p.tok.kind == tokLParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			// `new(oid, flt)` takes type names: treat bare refs as strings.
			if name == "new" {
				for i, a := range args {
					if r, ok := a.(*Ref); ok {
						args[i] = &Lit{V: r.Name}
					}
				}
			}
			return &Call{Fn: name, Args: args}, nil
		}
		return &Ref{Name: name}, nil
	}
	return nil, errorf("line %d: unexpected token %q", p.tok.line, p.tok.text)
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.tok.kind == tokRParen {
		return args, p.advance()
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	_, err := p.expect(tokRParen, ")")
	return args, err
}
