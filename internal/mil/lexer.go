package mil

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokStr
	tokOID // 5@0
	tokAssign
	tokSemi
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokOp // operator symbol inside [...] contexts: + - * / < <= etc.
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("mil: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

// next scans one token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: lx.pos, line: lx.line}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	mk := func(k tokenKind) token {
		return token{kind: k, text: lx.src[start:lx.pos], pos: start, line: lx.line}
	}
	switch {
	case c == ';':
		lx.pos++
		return mk(tokSemi), nil
	case c == ',':
		lx.pos++
		return mk(tokComma), nil
	case c == '.':
		// distinguish float like .5? MIL literals always have a leading digit;
		// a bare dot is method access.
		lx.pos++
		return mk(tokDot), nil
	case c == '(':
		lx.pos++
		return mk(tokLParen), nil
	case c == ')':
		lx.pos++
		return mk(tokRParen), nil
	case c == '[':
		lx.pos++
		return mk(tokLBracket), nil
	case c == ']':
		lx.pos++
		return mk(tokRBracket), nil
	case c == '{':
		lx.pos++
		return mk(tokLBrace), nil
	case c == '}':
		lx.pos++
		return mk(tokRBrace), nil
	case c == ':':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokAssign), nil
		}
		return token{}, lx.errf("unexpected ':'")
	case strings.ContainsRune("+-*/<>=!", rune(c)):
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
		}
		return mk(tokOp), nil
	case c == '"':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			ch := lx.src[lx.pos]
			if ch == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
				switch lx.src[lx.pos] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '"':
					ch = '"'
				case '\\':
					ch = '\\'
				default:
					return token{}, lx.errf("bad escape \\%c", lx.src[lx.pos])
				}
			}
			if ch == '\n' {
				lx.line++
			}
			sb.WriteByte(ch)
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf("unterminated string")
		}
		lx.pos++ // closing quote
		return token{kind: tokStr, text: sb.String(), pos: start, line: lx.line}, nil
	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
		// OID literal: digits '@' digits
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '@' {
			numEnd := lx.pos
			lx.pos++
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
			return token{kind: tokOID, text: lx.src[start:numEnd], pos: start, line: lx.line}, nil
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' &&
			lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			lx.pos++
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
			// exponent
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
				lx.pos++
				if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
					lx.pos++
				}
				for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
					lx.pos++
				}
			}
			return mk(tokFloat), nil
		}
		return mk(tokInt), nil
	case isIdentStart(rune(c)):
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		return mk(tokIdent), nil
	}
	return token{}, lx.errf("unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
