// Package mil implements a small interpreter for a MIL-like physical
// execution language (MIL was the Monet Interpreter Language). The Moa
// logical layer compiles query expressions to MIL programs, exactly as the
// Mirror DBMS did; the interpreter here executes them against a set of named
// BATs. The language is also exposed interactively through cmd/moash.
//
// Statements:
//
//	var x := join(a.reverse(), b);   # declaration
//	x := [*](x, 2.0);                # assignment, multiplex op
//	s := {sum}(vals, grp);           # pump aggregate
//	print(x);                        # expression statement
//
// A method-style call a.f(b) is sugar for f(a, b).
package mil

import (
	"fmt"
	"strings"

	"mirror/internal/bat"
)

// Program is a parsed (or programmatically built) sequence of statements.
type Program struct {
	Stmts []Stmt
}

// Stmt is one statement: an optional assignment target plus an expression.
type Stmt struct {
	Var  string // "" for a bare expression statement
	Decl bool   // true when introduced with `var`
	Expr Expr
}

// Expr is a MIL expression node.
type Expr interface {
	// render writes MIL concrete syntax.
	render(sb *strings.Builder)
}

// Lit is a literal: int64, float64, string, bool, bat.OID, or nil.
type Lit struct{ V any }

// Ref names a variable.
type Ref struct{ Name string }

// Call invokes a builtin: Fn(Args...).
type Call struct {
	Fn   string
	Args []Expr
}

// Pump is {agg}(args...): a grouped aggregate.
type Pump struct {
	Agg  string
	Args []Expr
}

// Mux is [op](args...): a multiplexed scalar operator.
type Mux struct {
	Op   string
	Args []Expr
}

func (l *Lit) render(sb *strings.Builder)  { sb.WriteString(bat.FormatValue(l.V)) }
func (r *Ref) render(sb *strings.Builder)  { sb.WriteString(r.Name) }
func (c *Call) render(sb *strings.Builder) { renderCall(sb, c.Fn, c.Args) }
func (p *Pump) render(sb *strings.Builder) { renderCall(sb, "{"+p.Agg+"}", p.Args) }
func (m *Mux) render(sb *strings.Builder)  { renderCall(sb, "["+m.Op+"]", m.Args) }

func renderCall(sb *strings.Builder, fn string, args []Expr) {
	sb.WriteString(fn)
	sb.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			sb.WriteString(", ")
		}
		a.render(sb)
	}
	sb.WriteByte(')')
}

// String renders the program as MIL source text; parsing it back yields an
// equivalent program (used by tests as a round-trip property).
func (p *Program) String() string {
	var sb strings.Builder
	for _, s := range p.Stmts {
		if s.Decl {
			sb.WriteString("var ")
		}
		if s.Var != "" {
			sb.WriteString(s.Var)
			sb.WriteString(" := ")
		}
		s.Expr.render(&sb)
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Assign appends `v := expr` to the program and returns the reference.
func (p *Program) Assign(v string, e Expr) *Ref {
	p.Stmts = append(p.Stmts, Stmt{Var: v, Expr: e})
	return &Ref{Name: v}
}

// Do appends a bare expression statement.
func (p *Program) Do(e Expr) {
	p.Stmts = append(p.Stmts, Stmt{Expr: e})
}

// Render returns the MIL concrete syntax of a single expression.
func Render(e Expr) string {
	var sb strings.Builder
	e.render(&sb)
	return sb.String()
}

// C builds a Call node.
func C(fn string, args ...Expr) *Call { return &Call{Fn: fn, Args: args} }

// L builds a literal node.
func L(v any) *Lit { return &Lit{V: v} }

// R builds a variable reference.
func R(name string) *Ref { return &Ref{Name: name} }

// P builds a pump node.
func P(agg string, args ...Expr) *Pump { return &Pump{Agg: agg, Args: args} }

// M builds a multiplex node.
func M(op string, args ...Expr) *Mux { return &Mux{Op: op, Args: args} }

// Errorf formats errors with a mil: prefix; small helper shared by the
// interpreter files.
func errorf(format string, args ...any) error {
	return fmt.Errorf("mil: "+format, args...)
}
