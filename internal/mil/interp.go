package mil

import (
	"fmt"
	"io"

	"mirror/internal/bat"
)

// Env holds the variable bindings a program runs against. Base BATs (the
// stored database) are usually bound before Run; the program adds
// intermediates. Out receives print() output (defaults to io.Discard).
type Env struct {
	vars map[string]any
	Out  io.Writer

	// TopKTheta, when non-nil, is the shared pruning threshold the
	// prunedtopk builtin passes to the physical operator. A scatter-gather
	// engine binds one bat.TopKThreshold into the Env of every shard's
	// program for a query, so a hot shard's k-th best score prunes the
	// cold shards' scans (exactly as doc-range partitions already share a
	// threshold within one scan). Nil means a private per-call threshold.
	TopKTheta *bat.TopKThreshold
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{vars: make(map[string]any), Out: io.Discard}
}

// Bind sets a variable.
func (e *Env) Bind(name string, v any) { e.vars[name] = v }

// Lookup fetches a variable.
func (e *Env) Lookup(name string) (any, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// BAT fetches a variable and asserts it is a BAT.
func (e *Env) BAT(name string) (*bat.BAT, error) {
	v, ok := e.vars[name]
	if !ok {
		return nil, errorf("undefined variable %q", name)
	}
	b, ok := v.(*bat.BAT)
	if !ok {
		return nil, errorf("variable %q is not a BAT (%T)", name, v)
	}
	return b, nil
}

// Fork returns a child environment sharing the same bindings map is NOT what
// we want for repeated runs; Fork copies the bindings so a program's
// intermediates do not pollute the base environment.
func (e *Env) Fork() *Env {
	c := NewEnv()
	c.Out = e.Out
	for k, v := range e.vars {
		c.vars[k] = v
	}
	return c
}

// Run executes the program in env. The value of the last statement is
// returned (result of the final expression or assignment).
func Run(p *Program, env *Env) (any, error) {
	var last any
	for i := range p.Stmts {
		st := &p.Stmts[i]
		v, err := evalExpr(st.Expr, env)
		if err != nil {
			return nil, err
		}
		if st.Var != "" {
			env.vars[st.Var] = v
		}
		last = v
	}
	return last, nil
}

// RunSource parses and executes MIL source text.
func RunSource(src string, env *Env) (any, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(p, env)
}

func evalExpr(e Expr, env *Env) (any, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *Ref:
		v, ok := env.vars[x.Name]
		if !ok {
			return nil, errorf("undefined variable %q", x.Name)
		}
		return v, nil
	case *Call:
		fn, ok := builtins[x.Fn]
		if !ok {
			return nil, errorf("unknown function %q", x.Fn)
		}
		args, err := evalArgs(x.Args, env)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", x.Fn, err)
		}
		v, err := fn(env, args)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", x.Fn, err)
		}
		return v, nil
	case *Pump:
		args, err := evalArgs(x.Args, env)
		if err != nil {
			return nil, err
		}
		return evalPump(x.Agg, args)
	case *Mux:
		args, err := evalArgs(x.Args, env)
		if err != nil {
			return nil, err
		}
		return evalMux(x.Op, args)
	}
	return nil, errorf("bad expression node %T", e)
}

func evalArgs(exprs []Expr, env *Env) ([]any, error) {
	out := make([]any, len(exprs))
	for i, e := range exprs {
		v, err := evalExpr(e, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalPump dispatches {agg}(b) → by-head pump and {agg}(vals, grp) → grouped
// pump.
func evalPump(agg string, args []any) (any, error) {
	kind, err := bat.AggKindFromString(agg)
	if err != nil {
		return nil, err
	}
	switch len(args) {
	case 1:
		b, ok := args[0].(*bat.BAT)
		if !ok {
			return nil, errorf("{%s}: argument must be a BAT, got %T", agg, args[0])
		}
		return bat.PumpByHead(kind, b)
	case 2:
		vals, ok1 := args[0].(*bat.BAT)
		grp, ok2 := args[1].(*bat.BAT)
		if !ok1 || !ok2 {
			return nil, errorf("{%s}: arguments must be BATs", agg)
		}
		return bat.PumpAggregate(kind, vals, grp)
	}
	return nil, errorf("{%s}: want 1 or 2 arguments, got %d", agg, len(args))
}

// evalMux dispatches [op](a), [op](a, b), and scalar/BAT mixes.
func evalMux(op string, args []any) (any, error) {
	switch len(args) {
	case 1:
		b, ok := args[0].(*bat.BAT)
		if !ok {
			return nil, errorf("[%s]: argument must be a BAT, got %T", op, args[0])
		}
		return bat.MultiplexUnary(op, b)
	case 2:
		a, aBAT := args[0].(*bat.BAT)
		b, bBAT := args[1].(*bat.BAT)
		switch {
		case aBAT && bBAT:
			return bat.Multiplex(op, a, b)
		case aBAT:
			return bat.MultiplexConst(op, a, args[1], true)
		case bBAT:
			return bat.MultiplexConst(op, b, args[0], false)
		default:
			return nil, errorf("[%s]: at least one argument must be a BAT", op)
		}
	}
	return nil, errorf("[%s]: want 1 or 2 arguments, got %d", op, len(args))
}
