package mil

import (
	"math"
	"testing"

	"mirror/internal/bat"
)

// mk builds a dense-headed BAT for builtin tests.
func mk(t *testing.T, tk bat.Kind, vals ...any) *bat.BAT {
	t.Helper()
	b := bat.NewDense(0, tk)
	for i, v := range vals {
		if err := b.Append(bat.OID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestSetOperationBuiltins(t *testing.T) {
	l := bat.New(bat.KindOID, bat.KindStr)
	l.MustAppend(bat.OID(1), "a")
	l.MustAppend(bat.OID(2), "b")
	r := bat.New(bat.KindOID, bat.KindStr)
	r.MustAppend(bat.OID(2), "x")
	r.MustAppend(bat.OID(3), "y")
	bind := map[string]any{"l": l, "r": r}

	if v := runSrc(t, "count(kunion(l, r));", bind); v.(int64) != 3 {
		t.Fatalf("kunion = %v", v)
	}
	if v := runSrc(t, "count(kdiff(l, r));", bind); v.(int64) != 1 {
		t.Fatalf("kdiff = %v", v)
	}
	if v := runSrc(t, "count(kintersect(l, r));", bind); v.(int64) != 1 {
		t.Fatalf("kintersect = %v", v)
	}
	if v := runSrc(t, "count(cross(l, r));", bind); v.(int64) != 4 {
		t.Fatalf("cross = %v", v)
	}
}

func TestSelectionBuiltins(t *testing.T) {
	b := mk(t, bat.KindStr, "apple", "pear", "APPLE")
	bind := map[string]any{"b": b}
	if v := runSrc(t, `count(like_select(b, "app"));`, bind); v.(int64) != 2 {
		t.Fatalf("like_select = %v", v)
	}
	if v := runSrc(t, `count(select_not(b, "pear"));`, bind); v.(int64) != 2 {
		t.Fatalf("select_not = %v", v)
	}
	if v := runSrc(t, `exists(reverse(b), "pear");`, bind); v.(bool) != true {
		t.Fatalf("exists = %v", v)
	}
	if v := runSrc(t, `exists(reverse(b), "kiwi");`, bind); v.(bool) != false {
		t.Fatalf("exists = %v", v)
	}
}

func TestHistogramAndNumber(t *testing.T) {
	b := mk(t, bat.KindStr, "x", "y", "x", "x")
	bind := map[string]any{"b": b}
	if v := runSrc(t, `find(histogram(b), "x");`, bind); v.(int64) != 3 {
		t.Fatalf("histogram = %v", v)
	}
	if v := runSrc(t, `count(number(b));`, bind); v.(int64) != 4 {
		t.Fatalf("number = %v", v)
	}
	dup := bat.New(bat.KindOID, bat.KindInt)
	dup.MustAppend(bat.OID(5), int64(1))
	dup.MustAppend(bat.OID(5), int64(2))
	if v := runSrc(t, `count(kunique(d));`, map[string]any{"d": dup}); v.(int64) != 1 {
		t.Fatalf("kunique = %v", v)
	}
}

func TestScalarAggBuiltins(t *testing.T) {
	b := mk(t, bat.KindFloat, 2.0, 4.0, 6.0)
	bind := map[string]any{"b": b}
	cases := map[string]float64{
		"avg(b);": 4, "min(b);": 2, "max(b);": 6, "prod(b);": 48,
	}
	for src, want := range cases {
		if v := runSrc(t, src, bind); math.Abs(v.(float64)-want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", src, v, want)
		}
	}
}

func TestCalcBuiltin(t *testing.T) {
	cases := map[string]float64{
		`calc("+", 2, 3);`:   5,
		`calc("-", 2, 3);`:   -1,
		`calc("*", 2.5, 4);`: 10,
		`calc("/", 9, 3);`:   3,
		`calc("/", 9, 0);`:   0,
		`calc("min", 2, 3);`: 2,
		`calc("max", 2, 3);`: 3,
	}
	for src, want := range cases {
		if v := runSrc(t, src, nil); math.Abs(v.(float64)-want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", src, v, want)
		}
	}
	env := NewEnv()
	if _, err := RunSource(`calc("%", 1, 2);`, env); err == nil {
		t.Fatal("unknown calc op should error")
	}
}

func TestFillBuiltin(t *testing.T) {
	scores := bat.New(bat.KindOID, bat.KindFloat)
	scores.MustAppend(bat.OID(0), 0.9)
	scores.MustAppend(bat.OID(2), 0.7)
	domain := bat.New(bat.KindVoid, bat.KindVoid)
	for i := 0; i < 4; i++ {
		domain.MustAppend(bat.OID(i), bat.OID(i))
	}
	bind := map[string]any{"s": scores, "d": domain}
	v := runSrc(t, `var f := fill(s, d, 0.5); count(f);`, bind)
	if v.(int64) != 4 {
		t.Fatalf("fill count = %v", v)
	}
	v = runSrc(t, `find(fill(s, d, 0.5), 3@0);`, bind)
	if v.(float64) != 0.5 {
		t.Fatalf("fill default = %v", v)
	}
	v = runSrc(t, `find(fill(s, d, 0.5), 0@0);`, bind)
	if v.(float64) != 0.9 {
		t.Fatalf("fill existing = %v", v)
	}
	// int tail coercion path
	counts := bat.New(bat.KindOID, bat.KindInt)
	counts.MustAppend(bat.OID(1), int64(7))
	v = runSrc(t, `find(fill(c, d, 0), 2@0);`, map[string]any{"c": counts, "d": domain})
	if v.(int64) != 0 {
		t.Fatalf("fill int = %v", v)
	}
}

func TestWSumBelBuiltin(t *testing.T) {
	term := bat.NewDense(0, bat.KindOID)
	doc := bat.NewDense(0, bat.KindOID)
	bel := bat.NewDense(0, bat.KindFloat)
	term.MustAppend(bat.OID(0), bat.OID(10))
	doc.MustAppend(bat.OID(0), bat.OID(0))
	bel.MustAppend(bat.OID(0), 0.9)
	q := mk(t, bat.KindOID, bat.OID(10))
	w := mk(t, bat.KindFloat, 2.0)
	bind := map[string]any{
		"rev": term.Reverse(), "doc": doc, "bel": bel, "q": q, "w": w,
	}
	v := runSrc(t, `find(wsum_bel(rev, doc, bel, q, w, 0.4), 0@0);`, bind)
	// 2*(0.9-0.4) + 2*0.4 = 1.8
	if math.Abs(v.(float64)-1.8) > 1e-12 {
		t.Fatalf("wsum_bel = %v", v)
	}
}

func TestRefineBuiltin(t *testing.T) {
	a := mk(t, bat.KindStr, "x", "x", "y")
	b := mk(t, bat.KindInt, int64(1), int64(2), int64(1))
	v := runSrc(t, `
		var g := group(a);
		var g2 := refine(g, b);
		count(g2);`, map[string]any{"a": a, "b": b})
	if v.(int64) != 3 {
		t.Fatalf("refine count = %v", v)
	}
}

func TestBuiltinArgErrors(t *testing.T) {
	b := mk(t, bat.KindInt, int64(1))
	bad := []string{
		`join(b);`,             // arity
		`join(b, 3);`,          // type
		`select(3, 1);`,        // not a BAT
		`topn(b, "x");`,        // bad int
		`new(oid);`,            // arity
		`new(blob, int);`,      // unknown kind
		`mark(3);`,             // not a BAT
		`slice(b, 1);`,         // arity
		`fetch(b, 99);`,        // out of range
		`find(b, 99);`,         // missing head
		`getbl(b, b, b, b);`,   // arity
		`{bogus}(b);`,          // unknown aggregate
		`[bogus](b);`,          // unknown unary mux
		`[+](1, 2);`,           // no BAT operand
		`{sum}(b, b, b);`,      // pump arity
		`like_select(b, "x");`, // non-str tail
		`histogram(b, b);`,     // arity
	}
	for _, src := range bad {
		env := NewEnv()
		env.Bind("b", b)
		if _, err := RunSource(src, env); err == nil {
			t.Errorf("RunSource(%q) should fail", src)
		}
	}
}

func TestMuxBoolOps(t *testing.T) {
	a := mk(t, bat.KindBool, true, false)
	b := mk(t, bat.KindBool, true, true)
	v := runSrc(t, `fetch([and](a, b), 1);`, map[string]any{"a": a, "b": b})
	if v.(bool) != false {
		t.Fatalf("[and] = %v", v)
	}
	v = runSrc(t, `fetch([or](a, b), 1);`, map[string]any{"a": a, "b": b})
	if v.(bool) != true {
		t.Fatalf("[or] = %v", v)
	}
	v = runSrc(t, `fetch([not](a), 0);`, map[string]any{"a": a})
	if v.(bool) != false {
		t.Fatalf("[not] = %v", v)
	}
}

func TestParallelismBuiltins(t *testing.T) {
	defer func() {
		bat.SetParallelism(0)
		bat.SetParallelThreshold(0)
	}()
	v := runSrc(t, "parallelism(3); parallelism();", nil)
	if v.(int64) != 3 {
		t.Fatalf("parallelism() = %v, want 3", v)
	}
	v = runSrc(t, "parallel_threshold(16); parallel_threshold();", nil)
	if v.(int64) != 16 {
		t.Fatalf("parallel_threshold() = %v, want 16", v)
	}
	// restore defaults from MIL and confirm the override is gone
	runSrc(t, "parallelism(0); parallel_threshold(0);", nil)
	if got := bat.ParallelThreshold(); got != bat.DefaultParallelThreshold {
		t.Fatalf("threshold after reset = %d", got)
	}
}

// TestPrunedTopKBuiltin exercises the MIL surface of the pruned retrieval
// operator on a hand-built term-ordered postings fixture: two terms, four
// documents, one unmatched document merged in at the default score.
func TestPrunedTopKBuiltin(t *testing.T) {
	// term 0 → postings (doc 0, 0.9), (doc 2, 0.5); term 1 → (doc 1, 0.6)
	start := mk(t, bat.KindInt, int64(0), int64(2), int64(3))
	doc := mk(t, bat.KindOID, bat.OID(0), bat.OID(2), bat.OID(1))
	bel := mk(t, bat.KindFloat, 0.9, 0.5, 0.6)
	maxb := mk(t, bat.KindFloat, 0.9, 0.6)
	q := mk(t, bat.KindOID, bat.OID(0), bat.OID(1))
	domain := bat.New(bat.KindVoid, bat.KindVoid)
	for i := 0; i < 4; i++ {
		domain.MustAppend(bat.OID(i), bat.OID(i))
	}
	bind := map[string]any{"st": start, "d": doc, "b": bel, "mb": maxb, "q": q, "dom": domain}

	v := runSrc(t, "prunedtopk(st, d, b, mb, q, 0.4, 4, dom);", bind)
	out := v.(*bat.BAT)
	// scores: doc0 = 0.9+0.4 = 1.3, doc1 = 0.4+0.6 = 1.0, doc2 = 0.5+0.4 = 0.9,
	// doc3 unmatched = 2·0.4 = 0.8
	wantD := []bat.OID{0, 1, 2, 3}
	wantS := []float64{1.3, 1.0, 0.9, 0.8}
	if out.Len() != 4 {
		t.Fatalf("prunedtopk: %d hits", out.Len())
	}
	for i := range wantD {
		if out.Head.OIDAt(i) != wantD[i] || math.Abs(out.Tail.FloatAt(i)-wantS[i]) > 1e-12 {
			t.Fatalf("rank %d: (%d, %v)", i, out.Head.OIDAt(i), out.Tail.FloatAt(i))
		}
	}
	// k cuts
	out = runSrc(t, "prunedtopk(st, d, b, mb, q, 0.4, 2, dom);", bind).(*bat.BAT)
	if out.Len() != 2 || out.Head.OIDAt(0) != 0 || out.Head.OIDAt(1) != 1 {
		t.Fatalf("k=2 cut wrong: %v", out)
	}
}

func TestPostingsBuiltin(t *testing.T) {
	start := mk(t, bat.KindInt, int64(0), int64(2), int64(3))
	doc := mk(t, bat.KindOID, bat.OID(0), bat.OID(2), bat.OID(1))
	bel := mk(t, bat.KindFloat, 0.9, 0.5, 0.6)
	bind := map[string]any{"st": start, "d": doc, "b": bel}
	out := runSrc(t, "postings(st, d, b, 0);", bind).(*bat.BAT)
	if out.Len() != 2 || out.Head.OIDAt(0) != 0 || out.Tail.FloatAt(1) != 0.5 {
		t.Fatalf("postings(0): %v", out)
	}
	out = runSrc(t, "postings(st, d, b, 7);", bind).(*bat.BAT)
	if out.Len() != 0 {
		t.Fatalf("postings OOV: %v", out)
	}
}
