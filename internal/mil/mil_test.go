package mil

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mirror/internal/bat"
)

func runSrc(t *testing.T, src string, bind map[string]any) any {
	t.Helper()
	env := NewEnv()
	for k, v := range bind {
		env.Bind(k, v)
	}
	v, err := RunSource(src, env)
	if err != nil {
		t.Fatalf("RunSource(%q): %v", src, err)
	}
	return v
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x := ;",
		"x = 1;",
		"var := 2;",
		`x := "unterminated;`,
		"x := foo(1,;",
		"x := [**?](a, b);",
		"x := 1",
		"x := @3;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLiteralsAndAssignment(t *testing.T) {
	v := runSrc(t, `
		var x := 42;
		var y := 2.5;
		var s := "hi\n";
		var b := true;
		var o := 7@0;
		var n := nil;
		x;
	`, nil)
	if v.(int64) != 42 {
		t.Fatalf("x = %v", v)
	}
	v = runSrc(t, "var y := -3; y;", nil)
	if v.(int64) != -3 {
		t.Fatalf("neg = %v", v)
	}
}

func TestNewInsertSelect(t *testing.T) {
	v := runSrc(t, `
		var b := new(oid, int);
		insert(b, 0@0, 5);
		insert(b, 1@0, 9);
		insert(b, 2@0, 5);
		var s := select(b, 5);
		count(s);
	`, nil)
	if v.(int64) != 2 {
		t.Fatalf("count = %v", v)
	}
}

func TestMethodSugar(t *testing.T) {
	b := bat.NewDense(0, bat.KindFloat)
	b.MustAppend(bat.OID(0), 1.0)
	b.MustAppend(bat.OID(1), 2.0)
	v := runSrc(t, "b.reverse().reverse().sum();", map[string]any{"b": b})
	if v.(float64) != 3.0 {
		t.Fatalf("sum = %v", v)
	}
}

func TestMultiplexAndPump(t *testing.T) {
	vals := bat.NewDense(0, bat.KindFloat)
	grp := bat.NewDense(0, bat.KindOID)
	for i, v := range []float64{1, 2, 3, 4} {
		vals.MustAppend(bat.OID(i), v)
		grp.MustAppend(bat.OID(i), bat.OID(i%2))
	}
	v := runSrc(t, `
		var doubled := [*](vals, 2.0);
		var sums := {sum}(doubled, grp);
		fetch(sums, 0);
	`, map[string]any{"vals": vals, "grp": grp})
	if v.(float64) != 8 { // (1+3)*2
		t.Fatalf("group0 sum = %v", v)
	}
}

func TestPumpByHeadViaBrace(t *testing.T) {
	b := bat.New(bat.KindOID, bat.KindFloat)
	b.MustAppend(bat.OID(1), 0.5)
	b.MustAppend(bat.OID(1), 0.25)
	b.MustAppend(bat.OID(2), 1.0)
	v := runSrc(t, `var s := {sum}(b); find(s, 1@0);`, map[string]any{"b": b})
	if v.(float64) != 0.75 {
		t.Fatalf("pump-by-head = %v", v)
	}
}

func TestUnaryMux(t *testing.T) {
	b := bat.NewDense(0, bat.KindFloat)
	b.MustAppend(bat.OID(0), math.E)
	v := runSrc(t, "fetch([log](b), 0);", map[string]any{"b": b})
	if math.Abs(v.(float64)-1) > 1e-12 {
		t.Fatalf("[log](e) = %v", v)
	}
}

func TestJoinPipeline(t *testing.T) {
	// classic Monet pattern: project a column through an intermediate.
	name := bat.NewDense(0, bat.KindStr)
	name.MustAppend(bat.OID(0), "ada")
	name.MustAppend(bat.OID(1), "bob")
	name.MustAppend(bat.OID(2), "cy")
	age := bat.NewDense(0, bat.KindInt)
	age.MustAppend(bat.OID(0), int64(30))
	age.MustAppend(bat.OID(1), int64(20))
	age.MustAppend(bat.OID(2), int64(40))
	v := runSrc(t, `
		var adults := uselect(age, 25, 99);
		var names := join(mark(adults, 0).reverse().reverse(), name);
		count(names);
	`, map[string]any{"name": name, "age": age})
	if v.(int64) != 2 {
		t.Fatalf("adults = %v", v)
	}
}

func TestGetBLBuiltin(t *testing.T) {
	term := bat.NewDense(0, bat.KindOID)
	doc := bat.NewDense(0, bat.KindOID)
	bel := bat.NewDense(0, bat.KindFloat)
	add := func(i int, d, tm bat.OID, b float64) {
		term.MustAppend(bat.OID(i), tm)
		doc.MustAppend(bat.OID(i), d)
		bel.MustAppend(bat.OID(i), b)
	}
	add(0, 0, 10, 0.9)
	add(1, 1, 11, 0.6)
	q := bat.NewDense(0, bat.KindOID)
	q.MustAppend(bat.OID(0), bat.OID(10))
	q.MustAppend(bat.OID(1), bat.OID(11))
	v := runSrc(t, `
		var scores := getbl(rev, doc, bel, q, 0.4);
		find(scores, 0@0);
	`, map[string]any{"rev": term.Reverse(), "doc": doc, "bel": bel, "q": q})
	if math.Abs(v.(float64)-1.3) > 1e-12 { // 0.9 + default 0.4
		t.Fatalf("getbl doc0 = %v", v)
	}
}

func TestPrintOutput(t *testing.T) {
	env := NewEnv()
	var buf bytes.Buffer
	env.Out = &buf
	if _, err := RunSource(`print("hello", 3);`, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hello" 3`) {
		t.Fatalf("print output = %q", buf.String())
	}
}

func TestUndefinedVariable(t *testing.T) {
	env := NewEnv()
	if _, err := RunSource("x;", env); err == nil {
		t.Fatal("undefined variable should error")
	}
	if _, err := RunSource("nosuchfn(1);", env); err == nil {
		t.Fatal("unknown function should error")
	}
}

func TestForkIsolation(t *testing.T) {
	env := NewEnv()
	env.Bind("base", int64(1))
	child := env.Fork()
	if _, err := RunSource("tmp := 5; tmp;", child); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Lookup("tmp"); ok {
		t.Fatal("child binding leaked into parent")
	}
	if v, ok := child.Lookup("base"); !ok || v.(int64) != 1 {
		t.Fatal("child should see parent bindings")
	}
}

func TestRoundTripRendering(t *testing.T) {
	src := `
		var b := new(oid, flt);
		insert(b, 0@0, 0.5);
		x := [*](b, 2.0);
		s := {sum}(x);
		print(s);
	`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := p1.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

func TestProgrammaticConstruction(t *testing.T) {
	p := &Program{}
	p.Assign("b", C("new", L("oid"), L("flt")))
	p.Do(C("insert", R("b"), L(bat.OID(0)), L(0.25)))
	p.Do(C("insert", R("b"), L(bat.OID(1)), L(0.75)))
	p.Assign("s", C("sum", R("b")))
	p.Do(R("s"))
	env := NewEnv()
	v, err := Run(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 1.0 {
		t.Fatalf("sum = %v", v)
	}
	// the rendered text must reparse
	if _, err := Parse(p.String()); err != nil {
		t.Fatalf("render/reparse: %v\n%s", err, p.String())
	}
}

func TestSliceFetchTopN(t *testing.T) {
	b := bat.NewDense(0, bat.KindFloat)
	for i, v := range []float64{0.1, 0.9, 0.5} {
		b.MustAppend(bat.OID(i), v)
	}
	v := runSrc(t, "fetch(topn(b, 1), 0);", map[string]any{"b": b})
	if v.(float64) != 0.9 {
		t.Fatalf("top1 = %v", v)
	}
	v = runSrc(t, "hfetch(topn(b, 1), 0);", map[string]any{"b": b})
	if v.(bat.OID) != 1 {
		t.Fatalf("top1 head = %v", v)
	}
	v = runSrc(t, "count(slice(b, 1, 3));", map[string]any{"b": b})
	if v.(int64) != 2 {
		t.Fatalf("slice count = %v", v)
	}
}

func TestComments(t *testing.T) {
	v := runSrc(t, `
		# hash comment
		// slash comment
		var x := 1; # trailing
		x;
	`, nil)
	if v.(int64) != 1 {
		t.Fatalf("x = %v", v)
	}
}
