package mil

import "testing"

// FuzzMILParse drives the MIL lexer and parser with arbitrary input: no
// query text, however malformed, may panic the server — parse errors are
// the only acceptable failure. Successfully parsed programs must also
// re-render (String) without panicking, since the shell and the Moa
// translator both print programs back.
//
// Seed corpus: the inline seeds below plus testdata/fuzz/FuzzMILParse.
func FuzzMILParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"var x := 42;",
		"var y := -3.25; y;",
		`var s := "hi\n"; print(s);`,
		"var o := 7@0;",
		"var n := nil;",
		"var b := new(oid, int); insert(b, 0@0, 5); count(select(b, 5));",
		"b.reverse().reverse().sum();",
		"var doubled := [*](vals, 2.0); var sums := {sum}(doubled, grp); fetch(sums, 0);",
		"var j := join(l, r); print(j);",
		"kdiff(semijoin(l, r), r);",
		"var g := group(b); {count}(g, g);",
		"uselect(b, 1, 10);",
		"[+](a, b); [==](a, 1); [not](c);",
		"parallelism(4); parallelism();",
		`x := "unterminated;`,
		"var x :=;",
		"insert(b, 0@0, 5",
		"{sum(b);",
		"[](a, b);",
		"@@;;@",
		"var \x00 := 1;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		_ = p.String()
	})
}
