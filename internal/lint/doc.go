// Package lint hosts the repository's custom static analyzers, run in CI
// alongside go vet. Each analyzer lives in its own subpackage with a
// command driver under cmd/; see poolcheck for the pooled borrow/return
// discipline checker.
package lint
