package poolcheck

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagsPrePRLeaks pins the analyzer against the exact pre-fix
// Session.Run / queryDualCoding shapes (testdata/leaky mirrors the tree
// before this change): both error-path leaks must be reported.
func TestFlagsPrePRLeaks(t *testing.T) {
	diags, err := CheckDir(filepath.Join("testdata", "leaky"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Logf("diagnostic: %s", d)
	}
	wantSubstr := []string{
		`"ts" is not released on this return path`,       // both functions
		`"cs" is not released on this return path`,       // sessionRun's maybe-borrow
		`"combined" is not released on this return path`, // both CombineSum error paths
		"borrow is discarded",
		"is overwritten while still live",
		"raw scoresPool.Get",
		"raw scoresPool.Put",
		`"cset" is not released on this return path`, // block-decode cursor set
	}
	for _, want := range wantSubstr {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q", want)
		}
	}
	// The two pre-existing leaks the fix addresses: ts dropped on the
	// WeightedContentScores error path of sessionRun AND on the
	// QueryContent error path of queryDualCoding.
	tsLeaks := 0
	for _, d := range diags {
		if strings.Contains(d.Msg, `"ts" is not released`) {
			tsLeaks++
		}
	}
	if tsLeaks != 2 {
		t.Errorf("got %d ts-leak diagnostics, want 2 (one per pre-PR function)", tsLeaks)
	}
}

// TestCleanFixturePasses: the post-fix shapes (release on every path,
// defer, ownership transfer by return, threading, escape, loops,
// switches) must produce zero diagnostics.
func TestCleanFixturePasses(t *testing.T) {
	diags, err := CheckDir(filepath.Join("testdata", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestRepoIsClean runs the analyzer over the real internal tree — the
// same invocation CI uses — and requires zero findings: the borrow/return
// discipline holds everywhere, including every error path.
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..", "..", "internal")
	diags, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("pool discipline violation: %s", d)
	}
}
