// Package clean holds the post-fix shapes of the query hot path: every
// borrow released exactly once on every path. poolcheck must report
// nothing here. Never compiled — parsed by poolcheck_test only.
package clean

// sessionRun is the fixed Session.Run: every error return releases every
// live borrow (releases are nil-safe).
func sessionRun(k int) ([]Hit, error) {
	textHits, err := m.QueryAnnotations(text, 0)
	if err != nil {
		return nil, err
	}
	ts := hitsToScores(textHits)
	terms, ws := clusterWeights()
	var cs ir.Scores
	if len(terms) > 0 {
		cs, err = m.WeightedContentScores(terms, ws)
		if err != nil {
			ir.ReleaseScores(cs)
			ir.ReleaseScores(ts)
			return nil, err
		}
	}
	combined, err := ir.CombineWSum(
		[]ir.Scores{ts, cs},
		[]float64{alpha, 1},
		[]float64{1, 1},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		ir.ReleaseScores(combined)
		return nil, err
	}
	hits := scoresToHits(m, combined, k)
	ir.ReleaseScores(combined)
	return hits, nil
}

// deferred releases through defer: covers every exit after registration.
func deferred() error {
	s := ir.NewScores()
	defer ir.ReleaseScores(s)
	if bad() {
		return errBad
	}
	use(s)
	return nil
}

// transferred returns the borrow: ownership moves to the caller.
func transferred() (ir.Scores, error) {
	out := ir.NewScores()
	if bad() {
		ir.ReleaseScores(out)
		return nil, errBad
	}
	return out, nil
}

// threaded reuses ranking scratch through RankInto (the backing array may
// move, so the borrow follows the variable).
func threaded(s ir.Scores, k int) []Hit {
	ranked := borrowRanked()
	ranked = ir.RankInto(ranked, s, k)
	hits := convert(ranked)
	releaseRanked(ranked)
	return hits
}

// escaped stores the borrow into an outer structure: ownership transfers.
func escaped(perShard []ir.Scores, s int) {
	out := ir.NewScores()
	perShard[s] = out
}

// looped borrows and releases within each iteration.
func looped(n int) {
	for i := 0; i < n; i++ {
		s := ir.NewScores()
		use(s)
		ir.ReleaseScores(s)
	}
}

// switched releases on every arm that falls through.
func switched(mode int) {
	s := ir.NewScores()
	switch mode {
	case 0:
		use(s)
	default:
		use2(s)
	}
	ir.ReleaseScores(s)
}

// blockScan borrows block-decode cursors under defer: released on every
// path, including errors.
func blockScan(n int) error {
	cset := borrowBlockCursors(n)
	defer releaseBlockCursors(cset)
	return scan(cset)
}
