// Package leaky reproduces the pre-PR error-path pool leaks verbatim:
// the exact Session.Run and queryDualCoding shapes this analyzer was
// built to catch. Never compiled — parsed by poolcheck_test only.
package leaky

// sessionRun is the pre-fix Session.Run: ts (and the maybe-borrowed cs)
// leak when WeightedContentScores fails, and combined leaks when
// CombineSum fails.
func sessionRun(k int) ([]Hit, error) {
	textHits, err := m.QueryAnnotations(text, 0)
	if err != nil {
		return nil, err
	}
	ts := hitsToScores(textHits)
	terms, ws := clusterWeights()
	var cs ir.Scores
	var wtot float64
	for _, w := range ws {
		wtot += w
	}
	if len(terms) > 0 {
		cs, err = m.WeightedContentScores(terms, ws)
		if err != nil {
			return nil, err // LEAK: ts and cs never released
		}
	}
	combined, err := ir.CombineSum(
		[]ir.Scores{ts, cs},
		[]float64{float64(len(textTerms)) * ir.DefaultBelief, wtot * ir.DefaultBelief},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		return nil, err // LEAK: combined never released
	}
	hits := scoresToHits(m, combined, k)
	ir.ReleaseScores(combined)
	return hits, nil
}

// queryDualCoding is the pre-fix dual-coding path: the text-evidence
// borrow is dropped when the content retrieval fails, and combined leaks
// when CombineSum fails.
func queryDualCoding(site dualCodingSite, text string, k int) ([]Hit, error) {
	textHits, err := site.QueryAnnotations(text, 0)
	if err != nil {
		return nil, err
	}
	ts := hitsToScores(textHits)
	clusterWords := site.ExpandQuery(text, 5)
	var contentHits []Hit
	if len(clusterWords) > 0 {
		contentHits, err = site.QueryContent(clusterWords, 0)
		if err != nil {
			return nil, err // LEAK: ts never released
		}
	}
	cs := hitsToScores(contentHits)
	combined, err := ir.CombineSum(
		[]ir.Scores{ts, cs},
		[]float64{1, 1},
	)
	ir.ReleaseScores(ts)
	ir.ReleaseScores(cs)
	if err != nil {
		return nil, err // LEAK: combined never released
	}
	hits := scoresToHits(site, combined, k)
	ir.ReleaseScores(combined)
	return hits, nil
}

// discarded drops a borrow on the floor as a bare statement.
func discarded(child ir.Scores) {
	ir.CombineNot(child)
}

// overwritten re-borrows into a live name, leaking the first borrow.
func overwritten() ir.Scores {
	s := ir.NewScores()
	s = ir.NewScores() // LEAK: first borrow overwritten
	return s
}

// rawAccess touches the pool directly outside a poolfile.
func rawAccess() {
	s := scoresPool.Get().(Scores)
	scoresPool.Put(s)
}

// blockScanLeak borrows block-decode cursors and drops them on the error
// path — the shape the block-postings scan must never take.
func blockScanLeak(n int) error {
	cset := borrowBlockCursors(n)
	if err := scan(cset); err != nil {
		return err // LEAK: cset never released
	}
	releaseBlockCursors(cset)
	return nil
}
