// Package poolcheck statically enforces the pooled borrow/return
// discipline on the query hot path: every Scores map or ranking slice
// borrowed from a pool (ir.NewScores, the ir.Combine* operators,
// hitsToScores, WeightedContentScores, borrowRanked, borrowRows, ...)
// must be released exactly once on every control-flow path — including
// error returns — or have its ownership transferred by returning it.
//
// The checker is a purely syntactic forward dataflow over the AST
// (go/parser + go/ast only: the module is dependency-free, so it mimics
// the golang.org/x/tools go/analysis shape without importing it). Being
// syntactic it resolves callees by name, not by type — precise enough for
// this repository's conventions, and the reason the borrow/release
// vocabulary below is a closed list.
//
// Per function (and per function literal), the walk tracks which
// variables hold a live borrow:
//
//   - x := Borrow(...) makes x live; `x, err := Borrow(...)` likewise.
//   - Release(x), or a defer of it, ends x's borrow. Releases are
//     nil-safe at run time, so releasing on a branch where the borrow
//     may not have happened is fine — the merge keeps maybe-live
//     variables live, and a release always clears them.
//   - return ...x... transfers ownership to the caller; a live variable
//     not mentioned in the return values is reported as leaked on that
//     path.
//   - x = Borrow(...) while x is live is reported (the old borrow leaks),
//     unless x itself feeds the call (the threading style
//     `ranked = ir.RankInto(ranked, ...)`).
//   - Assigning a live borrow into a field, index or map cell transfers
//     ownership (it escapes the function's scope).
//   - A borrow expression used as a bare statement discards the borrow
//     and is reported immediately.
//
// Branches (if/switch/select) are analyzed per arm and merged; loops are
// analyzed once, and a borrow created inside a loop body must be released
// inside it. Raw scoresPool/rankedPool/rowPool access is reported outside
// the files that own the pools (marked with a `//poolcheck:poolfile`
// comment). _test.go files are skipped.
package poolcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, in the go/analysis spirit.
type Diagnostic struct {
	Pos token.Position
	Msg string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
}

// borrowFuncs maps callee names that hand out pooled objects to the pool
// class they borrow from. Ownership of the result transfers to the
// assignee.
var borrowFuncs = map[string]string{
	"NewScores":             "scores",
	"CombineSum":            "scores",
	"CombineWSum":           "scores",
	"CombineAnd":            "scores",
	"CombineOr":             "scores",
	"CombineNot":            "scores",
	"CombineMax":            "scores",
	"hitsToScores":          "scores",
	"WeightedContentScores": "scores",
	"weightedContentScores": "scores",
	"borrowRanked":          "ranked",
	"borrowRows":            "rows",
	"borrowBlockCursors":    "blockcursors",
	"borrowScanScratch":     "scanscratch",
}

// releaseFuncs maps callee names that end a borrow to their pool class.
var releaseFuncs = map[string]string{
	"ReleaseScores":       "scores",
	"releaseRanked":       "ranked",
	"releaseRows":         "rows",
	"releaseBlockCursors": "blockcursors",
	"releaseScanScratch":  "scanscratch",
}

// threadFuncs pass a borrow through: `x = Thread(x, ...)` keeps the same
// logical borrow live under the same name (the backing array may move).
var threadFuncs = map[string]bool{
	"RankInto": true,
}

// rawPools are the sync.Pool variables only their owning files (marked
// //poolcheck:poolfile) may touch directly.
var rawPools = map[string]bool{
	"scoresPool":      true,
	"rankedPool":      true,
	"rowPool":         true,
	"blockCursorPool": true,
	"scanScratchPool": true,
}

// terminators are callee names that never return.
var terminators = map[string]bool{
	"panic": true, "Fatal": true, "Fatalf": true, "Exit": true, "Goexit": true,
}

// CheckFile analyzes one parsed file.
func CheckFile(fset *token.FileSet, file *ast.File) []Diagnostic {
	c := &checker{fset: fset, poolFile: isPoolFile(file)}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c.checkFunc(fn.Body)
	}
	// Function literals are independent scopes (goroutines, fan-out
	// closures): analyze each body on its own.
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(lit.Body)
		}
		return true
	})
	if !c.poolFile {
		c.checkRawPoolAccess(file)
	}
	sort.Slice(c.diags, func(i, j int) bool {
		return c.diags[i].Pos.Offset < c.diags[j].Pos.Offset
	})
	return c.diags
}

// CheckDir parses and analyzes every non-test .go file of one directory.
func CheckDir(dir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		diags = append(diags, CheckFile(fset, file)...)
	}
	return diags, nil
}

// CheckTree analyzes every package directory under root, skipping
// testdata trees and _test.go files.
func CheckTree(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
			return filepath.SkipDir
		}
		ds, err := CheckDir(path)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	})
	return diags, err
}

// isPoolFile reports whether the file carries the //poolcheck:poolfile
// marker granting it raw pool access.
func isPoolFile(file *ast.File) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//poolcheck:poolfile") {
				return true
			}
		}
	}
	return false
}

// checker accumulates diagnostics across one file.
type checker struct {
	fset     *token.FileSet
	poolFile bool
	diags    []Diagnostic
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Pos: c.fset.Position(pos), Msg: fmt.Sprintf(format, args...)})
}

// checkRawPoolAccess flags scoresPool.Get()/rankedPool.Put(...) style
// selectors outside pool-owning files.
func (c *checker) checkRawPoolAccess(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && rawPools[id.Name] {
			c.report(sel.Pos(), "raw %s.%s outside a //poolcheck:poolfile; use the borrow/release helpers", id.Name, sel.Sel.Name)
		}
		return true
	})
}

// borrow is one live borrowed object bound to a variable name.
type borrow struct {
	class string
	pos   token.Pos
}

// state maps variable name → live borrow. Branch analysis copies it.
type state map[string]borrow

func (st state) clone() state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// merge unions live borrows from branches that fall through: a variable
// maybe-live on any arm stays live (releases are nil-safe, so the
// required release on the joined path is always legal).
func merge(states ...state) state {
	out := state{}
	for _, st := range states {
		for k, v := range st {
			out[k] = v
		}
	}
	return out
}

// checkFunc runs the dataflow over one function body.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := state{}
	falls := c.stmts(body.List, st)
	if falls {
		for name, b := range st {
			c.report(b.pos, "%s borrow %q is not released before the end of the function", b.class, name)
		}
	}
}

// stmts analyzes a statement list, mutating st; reports whether control
// can fall out the end.
func (c *checker) stmts(list []ast.Stmt, st state) bool {
	for i, s := range list {
		if !c.stmt(s, st) {
			// Unreachable trailing statements are vet's business, not ours.
			_ = list[i:]
			return false
		}
	}
	return true
}

// stmt analyzes one statement; reports whether control continues past it.
func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				c.bindValues(vs.Names, vs.Values, token.DEFINE, st)
			}
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if arg, ok := releaseCall(call); ok {
			delete(st, arg)
			return true
		}
		if class, ok := borrowCallName(call); ok {
			c.report(call.Pos(), "result of %s borrow is discarded (never released)", class)
			return true
		}
		if isTerminator(call) {
			resetTo(st, nil)
			return false
		}
	case *ast.DeferStmt:
		// A registered defer covers every later exit of the enclosing
		// function; modeling it as an immediate release is exact for the
		// statements that follow it on this path.
		if arg, ok := releaseCall(s.Call); ok {
			delete(st, arg)
		}
	case *ast.ReturnStmt:
		returned := map[string]bool{}
		for _, r := range s.Results {
			collectIdents(r, returned)
		}
		for name, b := range st {
			if !returned[name] {
				c.report(s.Pos(), "%s borrow %q is not released on this return path (borrowed at %s)",
					b.class, name, c.fset.Position(b.pos))
			}
		}
		resetTo(st, nil)
		return false
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		thenSt := st.clone()
		thenFalls := c.stmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseFalls := true
		if s.Else != nil {
			elseFalls = c.stmt(s.Else, elseSt)
		}
		resetTo(st, nil)
		switch {
		case thenFalls && elseFalls:
			resetTo(st, merge(thenSt, elseSt))
		case thenFalls:
			resetTo(st, thenSt)
		case elseFalls:
			resetTo(st, elseSt)
		default:
			return false
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.switchLike(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.loopBody(s.Body, st)
	case *ast.RangeStmt:
		c.loopBody(s.Body, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this path; loop-level flow is handled
		// conservatively by loopBody.
		return false
	case *ast.GoStmt:
		// Captured borrows stay the spawner's responsibility; the literal's
		// own body is analyzed separately.
	}
	return true
}

// resetTo replaces st's contents with src (nil clears).
func resetTo(st, src state) {
	for k := range st {
		delete(st, k)
	}
	for k, v := range src {
		st[k] = v
	}
}

// switchLike analyzes switch/type-switch/select: every arm starts from
// the entry state; falling arms merge. Without a default arm the entry
// state itself falls through.
func (c *checker) switchLike(s ast.Stmt, st state) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var fallen []state
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		armSt := st.clone()
		if c.stmts(stmts, armSt) {
			fallen = append(fallen, armSt)
		}
	}
	if !hasDefault {
		fallen = append(fallen, st.clone())
	}
	if len(fallen) == 0 {
		return false
	}
	resetTo(st, merge(fallen...))
	return true
}

// loopBody analyzes a loop body once: borrows created inside must be
// released inside (the body may run many times); borrows live at entry
// that the body releases are treated as released after the loop (the
// zero-iteration case is the caller's concern — releases are nil-safe
// only for untaken borrows, and no call site in this repository borrows
// before a conditional loop that releases).
func (c *checker) loopBody(body *ast.BlockStmt, st state) {
	inner := st.clone()
	c.stmts(body.List, inner)
	for name, b := range inner {
		if _, outer := st[name]; !outer {
			c.report(b.pos, "%s borrow %q made inside the loop body is not released within it", b.class, name)
		}
	}
	for name := range st {
		if _, still := inner[name]; !still {
			delete(st, name)
		}
	}
}

// assign handles borrow creation, threading, overwrites and escapes.
func (c *checker) assign(s *ast.AssignStmt, st state) {
	// Escape: a live borrow stored into an index/field/map cell transfers
	// ownership out of this function's scope.
	for i, lhs := range s.Lhs {
		switch lhs.(type) {
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
			if i < len(s.Rhs) {
				if id, ok := s.Rhs[i].(*ast.Ident); ok {
					delete(st, id.Name)
				}
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			c.bindExpr(s.Lhs[i], s.Rhs[i], s.Tok, st)
		}
		return
	}
	// x, err := f(...): the single call's first result is the borrow.
	if len(s.Rhs) == 1 {
		c.bindExpr(s.Lhs[0], s.Rhs[0], s.Tok, st)
	}
}

// bindValues is assign for var declarations.
func (c *checker) bindValues(names []*ast.Ident, values []ast.Expr, tok token.Token, st state) {
	if len(names) == len(values) {
		for i := range values {
			c.bindExpr(names[i], values[i], tok, st)
		}
	} else if len(values) == 1 {
		c.bindExpr(names[0], values[0], tok, st)
	}
}

// bindExpr binds one RHS expression to one LHS target.
func (c *checker) bindExpr(lhs, rhs ast.Expr, tok token.Token, st state) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	call, isCall := rhs.(*ast.CallExpr)
	if !isCall {
		return
	}
	name := calleeName(call)
	if threadFuncs[name] && callUsesIdent(call, id.Name) {
		// ranked = ir.RankInto(ranked, ...): same borrow, maybe-moved
		// backing array; keeps the original borrow position.
		return
	}
	class, isBorrow := borrowCallName(call)
	if !isBorrow {
		return
	}
	if old, live := st[id.Name]; live && !callUsesIdent(call, id.Name) {
		c.report(call.Pos(), "%s borrow %q (borrowed at %s) is overwritten while still live",
			old.class, id.Name, c.fset.Position(old.pos))
	}
	_ = tok
	st[id.Name] = borrow{class: class, pos: call.Pos()}
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// borrowCallName reports the pool class when call is a registered borrow.
func borrowCallName(call *ast.CallExpr) (string, bool) {
	class, ok := borrowFuncs[calleeName(call)]
	return class, ok
}

// releaseCall matches Release(x) with an identifier argument.
func releaseCall(call *ast.CallExpr) (arg string, ok bool) {
	if _, isRelease := releaseFuncs[calleeName(call)]; !isRelease || len(call.Args) != 1 {
		return "", false
	}
	id, isIdent := call.Args[0].(*ast.Ident)
	if !isIdent {
		return "", false
	}
	return id.Name, true
}

// isTerminator matches calls that never return (panic, log.Fatal*,
// os.Exit, runtime.Goexit).
func isTerminator(call *ast.CallExpr) bool {
	return terminators[calleeName(call)]
}

// collectIdents gathers every identifier mentioned in expr (not
// descending into function literals).
func collectIdents(expr ast.Expr, out map[string]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			out[n.Name] = true
		}
		return true
	})
}

// callUsesIdent reports whether name appears anywhere in the call's
// arguments (threading and self-feeding reassignment).
func callUsesIdent(call *ast.CallExpr, name string) bool {
	used := map[string]bool{}
	for _, a := range call.Args {
		collectIdents(a, used)
	}
	return used[name]
}
