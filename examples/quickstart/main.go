// Quickstart: the paper's Section 3 scenario, end to end.
//
// It defines the TraditionalImgLib schema exactly as printed in the paper,
// inserts a handful of annotated images, and runs the paper's ranking
// query — map[sum(THIS)](map[getBL(...)](...)) — showing both the ranked
// result and the MIL program the Moa layer flattens the query into.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mirror/internal/ir"
	"mirror/internal/moa"
)

func main() {
	db := moa.NewDatabase()

	// The schema, verbatim from Section 3 of the paper.
	err := db.DefineFromSource(`
		define TraditionalImgLib as
		SET<
			TUPLE<
				Atomic<URL>: source,
				CONTREP<Text>: annotation
			>>;`)
	if err != nil {
		log.Fatal(err)
	}

	images := []struct{ url, annotation string }{
		{"http://lib/beach.ppm", "a sandy beach with gentle ocean waves at sunset"},
		{"http://lib/forest.ppm", "dense green forest with tall pine trees"},
		{"http://lib/harbour.ppm", "boats in the harbour on calm ocean water"},
		{"http://lib/city.ppm", "city skyline with bright lights at night"},
		{"http://lib/dunes.ppm", "sand dunes in the desert under a clear sky"},
		{"http://lib/reef.ppm", "colourful fish over a coral reef in the ocean"},
	}
	for _, im := range images {
		if _, err := db.Insert("TraditionalImgLib", map[string]any{
			"source": im.url, "annotation": im.annotation,
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Recompute collection statistics and beliefs after the batch.
	if err := db.Finalize("TraditionalImgLib"); err != nil {
		log.Fatal(err)
	}

	// "Ranking the images with respect to a query is then performed with
	// the following query" — Section 3, verbatim.
	const rankingQuery = `
		map[sum(THIS)](
			map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));`

	eng := moa.NewEngine(db)
	queryText := "ocean waves"
	params := ir.QueryParams(ir.Analyze(queryText))

	compiled, err := eng.Compile(rankingQuery, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Moa query:")
	fmt.Println(rankingQuery)
	fmt.Println("flattens to MIL:")
	fmt.Print(compiled.MIL())
	fmt.Println()

	res, err := compiled.Run()
	if err != nil {
		log.Fatal(err)
	}
	res.SortByScoreDesc()

	srcBAT, _ := db.BAT("TraditionalImgLib_source")
	fmt.Printf("ranking for query %q:\n", queryText)
	for i, row := range res.Rows {
		url, _ := srcBAT.Find(row.OID)
		fmt.Printf("  %d. %-26s %.4f\n", i+1, url, row.Value)
	}

	// The same engine answers ordinary relational queries, and IR and data
	// retrieval compose: rank only documents whose URL is not the reef.
	res2, err := eng.Query(`
		map[sum(THIS)](
			map[getBL(THIS.annotation, query, stats)](
				select[THIS.source != "http://lib/reef.ppm"](TraditionalImgLib)));`, params)
	if err != nil {
		log.Fatal(err)
	}
	res2.SortByScoreDesc()
	fmt.Printf("\nsame query, reef excluded via relational select: top hit ")
	url, _ := srcBAT.Find(res2.Rows[0].OID)
	fmt.Printf("%v (%.4f)\n", url, res2.Rows[0].Value)
}
