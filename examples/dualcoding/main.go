// Dual coding: a closer look at the thesaurus (Section 5.2).
//
// The association thesaurus links annotation vocabulary to content
// clusters — "an implementation of Paivio's dual coding theory". This
// example builds the demo index, prints the strongest word↔cluster
// associations in both directions, and quantifies what the paper could
// only demo: the mean reciprocal rank of ground-truth-matching images with
// and without thesaurus expansion, over one query per visual class.
//
// Run: go run ./examples/dualcoding
package main

import (
	"fmt"
	"log"

	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/ir"
	"mirror/internal/media"
)

func main() {
	items := corpus.Generate(corpus.Config{N: 60, W: 64, H: 64, Seed: 5, AnnotateRate: 0.6})
	m, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== word → cluster associations ==")
	for class := 0; class < len(media.Classes); class++ {
		term := corpus.CanonicalTerm(class)
		assocs := m.Thes.Associate(ir.Analyze(term), 3)
		fmt.Printf("  %-10s →", term)
		for _, a := range assocs {
			fmt.Printf("  %s(%.2f)", a.Concept, a.Belief)
		}
		fmt.Println()
	}

	fmt.Println("\n== cluster → word associations (what does each cluster 'mean'?) ==")
	for i, c := range m.Thes.Concepts() {
		if i >= 8 {
			fmt.Printf("  ... and %d more clusters\n", len(m.Thes.Concepts())-8)
			break
		}
		words := m.Thes.WordsFor(c, 3)
		fmt.Printf("  %-14s →", c)
		for _, w := range words {
			fmt.Printf("  %s(%.2f)", w.Concept, w.Belief)
		}
		fmt.Println()
	}

	// Quantify dual coding: for each class's canonical term, how early does
	// the first ground-truth-relevant UNANNOTATED image appear?
	fmt.Println("\n== retrieval of unannotated relevant images ==")
	var textRankings, dualRankings [][]core.Hit
	relevanceFns := make([]func(core.Hit) bool, 0, len(media.Classes))
	for class := 0; class < len(media.Classes); class++ {
		term := corpus.CanonicalTerm(class)
		cl := class
		rel := func(h core.Hit) bool {
			it := items[h.OID]
			return it.Annotation == "" && it.HasClass(cl)
		}
		// skip classes with no unannotated relevant item
		exists := false
		for _, it := range items {
			if it.Annotation == "" && it.HasClass(cl) {
				exists = true
				break
			}
		}
		if !exists {
			continue
		}
		th, err := m.QueryAnnotations(term, 0)
		if err != nil {
			log.Fatal(err)
		}
		dh, err := m.QueryDualCoding(term, 0)
		if err != nil {
			log.Fatal(err)
		}
		textRankings = append(textRankings, th)
		dualRankings = append(dualRankings, dh)
		relevanceFns = append(relevanceFns, rel)
	}
	mrr := func(rankings [][]core.Hit) float64 {
		var sum float64
		for i, hits := range rankings {
			for rank, h := range hits {
				if relevanceFns[i](h) {
					sum += 1 / float64(rank+1)
					break
				}
			}
		}
		return sum / float64(len(rankings))
	}
	fmt.Printf("  MRR of first unannotated relevant image, text only:   %.3f\n", mrr(textRankings))
	fmt.Printf("  MRR of first unannotated relevant image, dual coding: %.3f\n", mrr(dualRankings))
	fmt.Println("  (text-only retrieval cannot see unannotated images at all;")
	fmt.Println("   any lift comes purely from the thesaurus → content path)")
}
