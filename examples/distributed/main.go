// Distributed: Figure 1 of the paper, wired over real TCP sockets.
//
//	media server (HTTP)      daemons (RPC)        clients (RPC)
//	       \                     |                   /
//	        +----- distributed data dictionary -----+
//	                         |
//	                  Mirror DBMS (meta-data database)
//
// The example starts every party as its own server on an ephemeral port:
// the data dictionary, the media server, the nine extraction daemons, and
// the Mirror DBMS, which crawls the media server (web robot), runs the
// pipeline against daemons it discovers through the dictionary, registers
// itself, and finally answers a client query — also routed through the
// dictionary.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"mirror/internal/core"
	"mirror/internal/corpus"
	"mirror/internal/daemon"
	"mirror/internal/dict"
	"mirror/internal/mediaserver"
)

func main() {
	fmt.Println("== Figure 1: the open distributed architecture ==")

	// 1. the distributed data dictionary
	dictAddr, stopDict, err := dict.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stopDict()
	fmt.Printf("data dictionary     %s\n", dictAddr)

	// 2. the media server (a web server owning the footage)
	items := corpus.Generate(corpus.Config{N: 24, W: 48, H: 48, Seed: 3, AnnotateRate: 0.75})
	mediaURL, stopMedia, err := mediaserver.Start(items)
	if err != nil {
		log.Fatal(err)
	}
	defer stopMedia()
	fmt.Printf("media server        %s\n", mediaURL)

	// 3. the daemons, each registering with the dictionary
	handles, err := daemon.StartDemoDaemons(dictAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, h := range handles {
			h.Stop()
		}
	}()
	for _, h := range handles {
		fmt.Printf("daemon %-12s %-10s %s\n", h.Info.Name, h.Info.Kind, h.Info.Addr)
	}

	// 4. the Mirror DBMS: crawl, extract via daemons, serve
	crawled, err := mediaserver.Crawl(mediaURL)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range crawled {
		img, err := mediaserver.DecodeItemImage(it)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.AddImage(it.URL, it.Annotation, img); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("robot crawled %d items; running pipeline via daemons...\n", m.Size())
	opts := core.DefaultIndexOptions()
	if err := m.BuildContentIndexDistributed(opts, dictAddr); err != nil {
		log.Fatal(err)
	}
	dbmsAddr, stopDBMS, err := m.Serve("127.0.0.1:0", dictAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer stopDBMS()
	fmt.Printf("Mirror DBMS         %s\n", dbmsAddr)

	// 5. a client: discover the DBMS through the dictionary, query it
	client, err := core.DiscoverMirror(dictAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	schema, err := client.Schema()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient sees schema:\n%s\n", schema)

	hits, err := client.TextQuery("forest", 5, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("client dual-coding query \"forest\":")
	for i, h := range hits {
		fmt.Printf("  %d. %-40s %.4f\n", i+1, h.URL, h.Score)
	}

	reply, err := client.MoaQuery(`count(ImageLibraryInternal);`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient Moa query count(ImageLibraryInternal) = %s\n", reply.Scalar)
}
