// Image retrieval: the full Section 5 demo, in process.
//
// A synthetic collection (the web-robot substitute) is ingested into the
// ImageLibrary schema; the extraction pipeline segments every image, runs
// the two colour and four texture daemons, clusters each feature space with
// the AutoClass substitute, indexes the cluster "words" as CONTREP<Image>,
// and builds the association thesaurus. The example then walks the demo's
// interaction loop: text query → thesaurus expansion → dual-coding
// retrieval → relevance feedback.
//
// Run: go run ./examples/imageretrieval
package main

import (
	"fmt"
	"log"

	"mirror/internal/bat"
	"mirror/internal/core"
	"mirror/internal/corpus"
)

func main() {
	fmt.Println("== Mirror DBMS image retrieval demo (Section 5) ==")
	items := corpus.Generate(corpus.Config{N: 48, W: 64, H: 64, Seed: 7, AnnotateRate: 0.7})

	m, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		if err := m.AddImage(it.URL, it.Annotation, it.Scene.Img); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d images (%d annotated)\n", m.Size(), countAnnotated(items))

	fmt.Println("running daemons: segmenter, rgb_coarse, rgb_fine, gabor, glcm, autocorr, fractal; AutoClass; thesaurus...")
	if err := m.BuildContentIndex(core.DefaultIndexOptions()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content vocabulary: %d cluster words\n\n", len(m.Thes.Concepts()))

	queryText := "ocean"
	class := 2 // media class "water"; its canonical annotation term is "ocean"

	// 1. plain annotation retrieval (only annotated items can match)
	hits, err := m.QueryAnnotations(queryText, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("text-only retrieval for %q:\n", queryText)
	printHits(hits, items, class)

	// 2. thesaurus expansion: which content clusters does "ocean" evoke?
	clusters := m.ExpandQuery(queryText, 5)
	fmt.Printf("\nthesaurus associates %q with clusters %v\n", queryText, clusters)

	// 3. dual coding: text + content evidence combined
	dual, err := m.QueryDualCoding(queryText, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndual-coding retrieval (finds unannotated water images too):")
	printHits(dual, items, class)

	// 4. relevance feedback loop
	sess, err := m.NewSession(queryText)
	if err != nil {
		log.Fatal(err)
	}
	relevant := func(h core.Hit) bool { return items[h.OID].HasClass(class) }
	for round := 1; round <= 3; round++ {
		hits, err := sess.Run(10)
		if err != nil {
			log.Fatal(err)
		}
		p := core.PrecisionAtK(hits, 10, relevant)
		fmt.Printf("\nfeedback round %d: precision@10 = %.2f\n", round-1, p)
		var rel, nonrel []bat.OID
		for _, h := range hits {
			if relevant(h) {
				rel = append(rel, h.OID)
			} else {
				nonrel = append(nonrel, h.OID)
			}
		}
		if err := sess.Feedback(rel, nonrel); err != nil {
			log.Fatal(err)
		}
	}
	final, err := sess.Run(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter feedback: precision@10 = %.2f\n", core.PrecisionAtK(final, 10, relevant))
}

func printHits(hits []core.Hit, items []*corpus.Item, class int) {
	for i, h := range hits {
		it := items[h.OID]
		mark := " "
		if it.HasClass(class) {
			mark = "*"
		}
		ann := it.Annotation
		if ann == "" {
			ann = "(unannotated)"
		}
		if len(ann) > 46 {
			ann = ann[:46] + "…"
		}
		fmt.Printf("  %s %d. %-34s %.4f  %s\n", mark, i+1, h.URL, h.Score, ann)
	}
}

func countAnnotated(items []*corpus.Item) int {
	n := 0
	for _, it := range items {
		if it.Annotation != "" {
			n++
		}
	}
	return n
}
