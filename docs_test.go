package mirror

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mirror/internal/mil"
)

// TestDocsEveryInternalPackageHasGodoc fails when an internal package
// lacks a package-level doc comment ("// Package <name> ..."), keeping
// `go doc mirror/internal/<pkg>` useful for every layer.
func TestDocsEveryInternalPackageHasGodoc(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkg := d.Name()
		files, err := filepath.Glob(filepath.Join("internal", pkg, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		want := "// Package " + pkg + " "
		found := false
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(string(src), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("internal/%s has no package-level godoc (no file starts with %q)", pkg, want)
		}
	}
}

// TestDocsLinksResolve link-checks the repo-relative markdown links in
// ARCHITECTURE.md and everything under docs/.
func TestDocsLinksResolve(t *testing.T) {
	mdFiles := []string{"ARCHITECTURE.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	mdFiles = append(mdFiles, extra...)
	linkRE := regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)
	for _, md := range mdFiles {
		src, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("%s: %v (the architecture map is a required artifact)", md, err)
		}
		for _, match := range linkRE.FindAllStringSubmatch(string(src), -1) {
			target := match[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
				continue
			}
			// Only file links; MIL's own [op](args) syntax also matches
			// the markdown link pattern.
			if !strings.HasSuffix(target, ".md") && !strings.HasSuffix(target, ".go") {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q which does not resolve (%s)", md, target, resolved)
			}
		}
	}
}

// TestDocsMILReferenceIsComplete asserts docs/MIL.md documents every
// registered MIL builtin (and mentions the pump/mux forms).
func TestDocsMILReferenceIsComplete(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "MIL.md"))
	if err != nil {
		t.Fatalf("docs/MIL.md: %v (the MIL reference is a required artifact)", err)
	}
	doc := string(src)
	for _, name := range mil.BuiltinNames() {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/MIL.md does not document builtin %q", name)
		}
	}
	for _, form := range []string{"{sum}(", "[*]("} {
		if !strings.Contains(doc, form) {
			t.Errorf("docs/MIL.md does not show the %q form", form)
		}
	}
}

// TestDocsArchitectureCoversLayers keeps ARCHITECTURE.md honest: every
// internal package must appear in the map.
func TestDocsArchitectureCoversLayers(t *testing.T) {
	src, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		if !strings.Contains(string(src), fmt.Sprintf("internal/%s", d.Name())) {
			t.Errorf("ARCHITECTURE.md does not mention internal/%s", d.Name())
		}
	}
}
