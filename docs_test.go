package mirror

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mirror/internal/load"
	"mirror/internal/mil"
)

// TestDocsEveryInternalPackageHasGodoc fails when an internal package
// lacks a package-level doc comment ("// Package <name> ..."), keeping
// `go doc mirror/internal/<pkg>` useful for every layer.
func TestDocsEveryInternalPackageHasGodoc(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkg := d.Name()
		files, err := filepath.Glob(filepath.Join("internal", pkg, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		want := "// Package " + pkg + " "
		found := false
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasPrefix(string(src), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("internal/%s has no package-level godoc (no file starts with %q)", pkg, want)
		}
	}
}

// TestDocsLinksResolve link-checks the repo-relative markdown links in
// README.md, ARCHITECTURE.md and everything under docs/.
func TestDocsLinksResolve(t *testing.T) {
	mdFiles := []string{"README.md", "ARCHITECTURE.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	mdFiles = append(mdFiles, extra...)
	linkRE := regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)
	for _, md := range mdFiles {
		src, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("%s: %v (the architecture map is a required artifact)", md, err)
		}
		for _, match := range linkRE.FindAllStringSubmatch(string(src), -1) {
			target := match[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
				continue
			}
			// Only file links; MIL's own [op](args) syntax also matches
			// the markdown link pattern.
			if !strings.HasSuffix(target, ".md") && !strings.HasSuffix(target, ".go") {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q which does not resolve (%s)", md, target, resolved)
			}
		}
	}
}

// TestDocsMILReferenceIsComplete asserts docs/MIL.md documents every
// registered MIL builtin (and mentions the pump/mux forms).
func TestDocsMILReferenceIsComplete(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "MIL.md"))
	if err != nil {
		t.Fatalf("docs/MIL.md: %v (the MIL reference is a required artifact)", err)
	}
	doc := string(src)
	for _, name := range mil.BuiltinNames() {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/MIL.md does not document builtin %q", name)
		}
	}
	for _, form := range []string{"{sum}(", "[*]("} {
		if !strings.Contains(doc, form) {
			t.Errorf("docs/MIL.md does not show the %q form", form)
		}
	}
}

// cmdFlags parses the flag definitions out of cmd/<name>/main.go — the
// single source of truth the operations manual must track. min guards the
// extraction regexp against silently rotting.
func cmdFlags(t *testing.T, name string, min int) []string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("cmd", name, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	// Matches both package-level flag.X and the fs.X of a flag.NewFlagSet
	// (the testable-main style used by mkcorpus and mirrorload).
	re := regexp.MustCompile(`\b(?:flag|fs)\.(?:String|Bool|Int|Int64|Float64|Duration)\("([^"]+)"`)
	var names []string
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		names = append(names, m[1])
	}
	if len(names) < min {
		t.Fatalf("parsed only %d %s flags — the extraction regexp is stale", len(names), name)
	}
	return names
}

// mirrordFlags keeps the historical helper name used below.
func mirrordFlags(t *testing.T) []string { return cmdFlags(t, "mirrord", 5) }

// TestDocsOperationsCoversEveryMirrordFlag fails when cmd/mirrord gains
// (or renames) a flag without docs/OPERATIONS.md documenting it as
// `-name`, keeping the operator manual complete by construction.
func TestDocsOperationsCoversEveryMirrordFlag(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v (the operations manual is a required artifact)", err)
	}
	doc := string(src)
	for _, name := range mirrordFlags(t) {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document mirrord flag -%s", name)
		}
	}
	// the recovery story and the crash matrix are the document's reason
	// to exist — their anchors must survive edits
	for _, anchor := range []string{"Recovery walkthrough", "Crash matrix", "Sharding", "Distributed topology", "wal.log", "MANIFEST", "Online ingest", "Load testing & soak"} {
		if !strings.Contains(doc, anchor) {
			t.Errorf("docs/OPERATIONS.md lost its %q section/anchor", anchor)
		}
	}
}

// TestDocsOperationsCoversEveryMirrordaemonFlag brings cmd/mirrordaemon
// into the operability checks: until PR 5 it silently escaped them — a
// flag could be added or renamed without the manual noticing.
func TestDocsOperationsCoversEveryMirrordaemonFlag(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v (the operations manual is a required artifact)", err)
	}
	doc := string(src)
	if !strings.Contains(doc, "mirrordaemon") {
		t.Fatal("docs/OPERATIONS.md does not document cmd/mirrordaemon")
	}
	for _, name := range cmdFlags(t, "mirrordaemon", 2) {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document mirrordaemon flag -%s", name)
		}
	}
}

// TestDocsOperationsCoversEveryMirrorloadFlag extends the same
// completeness check to cmd/mirrorload, the load-test harness: its flag
// surface is the soak runbook's vocabulary.
func TestDocsOperationsCoversEveryMirrorloadFlag(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v (the operations manual is a required artifact)", err)
	}
	doc := string(src)
	if !strings.Contains(doc, "mirrorload") {
		t.Fatal("docs/OPERATIONS.md does not document cmd/mirrorload")
	}
	for _, name := range cmdFlags(t, "mirrorload", 10) {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document mirrorload flag -%s", name)
		}
	}
}

// TestDocsOperationsCoversEveryFault extends flag completeness to the
// harness's fault vocabulary: every injectable fault — single-daemon and
// distributed — must be documented by name in the operations manual, so
// the crash matrix and the -faults/-dist-faults rows cannot silently
// fall behind internal/load.
func TestDocsOperationsCoversEveryFault(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md: %v (the operations manual is a required artifact)", err)
	}
	doc := string(src)
	for _, f := range append(load.AllFaults(), load.AllDistFaults()...) {
		if !strings.Contains(doc, "`"+string(f)+"`") {
			t.Errorf("docs/OPERATIONS.md does not document fault %q", f)
		}
	}
}

// TestDocsReadmeCoversEntryPoints keeps README.md an honest front door:
// it must exist, name every binary in cmd/, and point at the deeper docs.
func TestDocsReadmeCoversEntryPoints(t *testing.T) {
	src, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md: %v (the repo front door is a required artifact)", err)
	}
	doc := string(src)
	cmds, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cmds {
		if d.IsDir() && !strings.Contains(doc, d.Name()) {
			t.Errorf("README.md does not mention cmd/%s", d.Name())
		}
	}
	for _, ref := range []string{"ARCHITECTURE.md", "docs/OPERATIONS.md", "docs/MIL.md", "EXPERIMENTS.md", "ROADMAP.md"} {
		if !strings.Contains(doc, ref) {
			t.Errorf("README.md does not point at %s", ref)
		}
	}
	for _, pkg := range []string{"internal/bat", "internal/moa", "internal/ir", "internal/storage", "internal/core"} {
		if !strings.Contains(doc, pkg) {
			t.Errorf("README.md does not describe %s", pkg)
		}
	}
}

// TestDocsCrashMatrixNamesRealTests keeps the OPERATIONS.md crash matrix
// anchored to the suite: every test it cites must still exist somewhere
// under internal/.
func TestDocsCrashMatrixNamesRealTests(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	cited := regexp.MustCompile("`(Test[A-Za-z0-9_]+)`").FindAllStringSubmatch(string(src), -1)
	if len(cited) == 0 {
		t.Fatal("the crash matrix cites no tests")
	}
	var testSrc strings.Builder
	for _, dir := range []string{"internal/storage", "internal/core", "internal/load"} {
		files, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			testSrc.Write(b)
		}
	}
	all := testSrc.String()
	for _, m := range cited {
		if !strings.Contains(all, "func "+m[1]+"(") {
			t.Errorf("docs/OPERATIONS.md cites %s, which no longer exists", m[1])
		}
	}
}

// TestDocsArchitectureCoversLayers keeps ARCHITECTURE.md honest: every
// internal package must appear in the map.
func TestDocsArchitectureCoversLayers(t *testing.T) {
	src, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		if !strings.Contains(string(src), fmt.Sprintf("internal/%s", d.Name())) {
			t.Errorf("ARCHITECTURE.md does not mention internal/%s", d.Name())
		}
	}
}
