package mirror

// E10 — the BAT buffer pool claim: persistence by flushing dirty BATs
// out of memory-mapped heap files beats rewriting the database, both
// on the write side (incremental checkpoint vs whole-directory save)
// and on the read side (mmap cold start vs whole-directory load).
// EXPERIMENTS.md records the measured ratios; the acceptance bar is
// ≥5× on a 1M-BUN × 16-BAT store.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mirror/internal/bat"
	"mirror/internal/storage"
)

const (
	e10BATs = 16
	e10BUNs = 1_000_000
)

// e10Store builds the 16 × 1M-BUN int store once per process.
var e10Store = sync.OnceValue(func() map[string]*bat.BAT {
	bats := make(map[string]*bat.BAT, e10BATs)
	for i := 0; i < e10BATs; i++ {
		vals := make([]int64, e10BUNs)
		for j := range vals {
			vals[j] = int64(i*e10BUNs + j)
		}
		b, err := bat.FromColumns(bat.NewVoid(0, e10BUNs), bat.ColumnOfInts(vals), true, true, true, true)
		if err != nil {
			panic(err)
		}
		bats[fmt.Sprintf("col%02d", i)] = b
	}
	return bats
})

// e10SavedDir lazily materialises one saved store for the load-side
// benchmarks, shared across them (read-only).
var e10SavedDir = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "e10-store-*")
	if err != nil {
		return "", err
	}
	dir = filepath.Join(dir, "db")
	return dir, storage.Save(dir, e10Store(), map[string]string{"e": "10"})
})

// TestE10IncrementalCheckpointShape is the deterministic shape claim
// behind the E10 benchmarks: after touching 1 of 16 BATs, a checkpoint
// writes one BAT's heap bytes, not the store's.
func TestE10IncrementalCheckpointShape(t *testing.T) {
	const nBats, nBuns = 16, 10_000
	dir := filepath.Join(t.TempDir(), "db")
	bats := make(map[string]*bat.BAT, nBats)
	for i := 0; i < nBats; i++ {
		vals := make([]int64, nBuns)
		b, err := bat.FromColumns(bat.NewVoid(0, nBuns), bat.ColumnOfInts(vals), true, true, true, true)
		if err != nil {
			t.Fatal(err)
		}
		bats[fmt.Sprintf("col%02d", i)] = b
	}
	p, err := storage.Create(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	full, err := p.Checkpoint(bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	bats["col03"].MustAppend(bat.OID(nBuns), int64(1))
	inc, err := p.Checkpoint(bats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Written != 1 {
		t.Fatalf("incremental checkpoint rewrote %d BATs, want 1", inc.Written)
	}
	if inc.Bytes*8 > full.Bytes {
		t.Fatalf("incremental checkpoint wrote %d bytes vs %d full — not even 8× less", inc.Bytes, full.Bytes)
	}
}

// BenchmarkE10_FullSave is the baseline writer: every BAT rewritten,
// the pre-BBP behaviour of storage.Save.
func BenchmarkE10_FullSave(b *testing.B) {
	bats := e10Store()
	b.SetBytes(int64(e10BATs) * e10BUNs * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), "db")
		b.StartTimer()
		if err := storage.Save(dir, bats, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_IncrementalCheckpoint dirties 1 of the 16 BATs per
// iteration and checkpoints: only that BAT's heap files plus the
// manifest are written.
func BenchmarkE10_IncrementalCheckpoint(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "db")
	bats := make(map[string]*bat.BAT, e10BATs)
	for name, src := range e10Store() {
		bats[name] = src.Clone()
	}
	p, err := storage.Create(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Checkpoint(bats, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(e10BUNs * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := bats[fmt.Sprintf("col%02d", i%e10BATs)]
		victim.MarkDirty()
		st, err := p.Checkpoint(bats, nil)
		if err != nil {
			b.Fatal(err)
		}
		if st.Written != 1 {
			b.Fatalf("incremental checkpoint wrote %d BATs, want 1", st.Written)
		}
	}
}

// BenchmarkE10_FullLoad is the baseline reader: every heap file read
// and decoded into private memory (storage.Load, the pre-BBP shape).
func BenchmarkE10_FullLoad(b *testing.B) {
	dir, err := e10SavedDir()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(e10BATs) * e10BUNs * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bats, _, err := storage.Load(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(bats) != e10BATs {
			b.Fatal("short load")
		}
	}
}

// BenchmarkE10_ColdStartMmap opens the store and touches a small
// working set of every BAT through the pool: the mmap path faults in
// only the pages used, so cold start is O(working set).
func BenchmarkE10_ColdStartMmap(b *testing.B) {
	dir, err := e10SavedDir()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := storage.Open(dir, storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var sum int64
		for j := 0; j < e10BATs; j++ {
			name := fmt.Sprintf("col%02d", j)
			bt, err := p.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			sum += bt.Tail.IntAt(0) + bt.Tail.IntAt(bt.Len()-1)
			p.Release(name)
		}
		if sum == 0 {
			b.Fatal("unexpected zero checksum")
		}
		p.Close()
	}
}
